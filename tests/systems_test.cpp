// Tests of the EquationSystem layer (ctest label: equation-systems).
//
// Three groups:
//  - construction/validation: system parsing, make_equation_system's
//    parameter checks, and the typed forcing-band validation;
//  - regression: the NavierStokes system must reproduce the pre-refactor
//    SpectralNSCore diagnostics (values pinned from the last commit before
//    the engine/system split, same configurations the bitwise digest
//    harness used);
//  - physics: each new system is validated against an exact linear-wave
//    solution (inertial, internal-gravity, Alfven - configurations whose
//    nonlinear terms vanish identically, so the analytic mode evolution is
//    exact up to time-integration error), plus slab/pencil equivalence of
//    diagnostics and named spectra.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/pencil_solver.hpp"
#include "dns/solver.hpp"
#include "dns/systems/equation_system.hpp"

namespace psdns::dns {
namespace {

/// Reads one spectral coefficient of field f by global wavenumber,
/// whichever rank owns it (collective; kx must be in [0, n/2]).
Complex probe_mode(SpectralNSCore& solver, comm::Communicator& comm,
                   std::size_t f, int kx, int ky, int kz) {
  double re = 0.0, im = 0.0;
  const Complex* a = solver.field(f);
  for_each_mode(solver.modes(), [&](std::size_t idx, int mx, int my, int mz) {
    if (mx == kx && my == ky && mz == kz) {
      re = a[idx].real();
      im = a[idx].imag();
    }
  });
  return {comm.allreduce_sum(re), comm.allreduce_sum(im)};
}

// --- construction and validation -----------------------------------------

TEST(EquationSystem, SystemTypeParseRoundTrip) {
  for (const auto s : {SystemType::NavierStokes, SystemType::RotatingNS,
                       SystemType::Boussinesq, SystemType::Mhd}) {
    EXPECT_EQ(parse_system_type(to_string(s)), s);
  }
  EXPECT_THROW(parse_system_type("ideal_gas"), util::Error);
  EXPECT_THROW(parse_system_type(""), util::Error);
}

TEST(EquationSystem, MakeRejectsMisconfiguredSystems) {
  SolverConfig cfg;
  cfg.system = SystemType::RotatingNS;
  cfg.rotation_omega = 0.0;
  EXPECT_THROW(make_equation_system(cfg), util::Error);

  cfg = SolverConfig{};
  cfg.system = SystemType::Boussinesq;
  cfg.brunt_vaisala = 0.0;
  EXPECT_THROW(make_equation_system(cfg), util::Error);
  cfg.brunt_vaisala = 1.0;
  cfg.scalars.clear();  // the engine materializes this before construction
  EXPECT_THROW(make_equation_system(cfg), util::Error);
  cfg.scalars.push_back(ScalarConfig{1.0, 0.5});  // buoyancy != mean-gradient
  EXPECT_THROW(make_equation_system(cfg), util::Error);

  cfg = SolverConfig{};
  cfg.system = SystemType::Mhd;
  cfg.scalars.push_back(ScalarConfig{});
  EXPECT_THROW(make_equation_system(cfg), util::Error);
  cfg.scalars.clear();
  cfg.resistivity = -0.1;
  EXPECT_THROW(make_equation_system(cfg), util::Error);
}

TEST(EquationSystem, FieldInventoryAndNames) {
  SolverConfig cfg;
  cfg.scalars.push_back(ScalarConfig{});
  const auto ns = make_equation_system(cfg);
  EXPECT_STREQ(ns->name(), "navier_stokes");
  EXPECT_EQ(ns->extra_fields(), 1u);
  EXPECT_EQ(ns->product_count(), 9u);  // 6 velocity + 3 flux
  EXPECT_EQ(ns->magnetic_base(), -1);
  EXPECT_EQ(ns->field_name(0), "u");
  EXPECT_EQ(ns->field_name(3), "scalar0");

  cfg = SolverConfig{};
  cfg.system = SystemType::Mhd;
  const auto mhd = make_equation_system(cfg);
  EXPECT_STREQ(mhd->name(), "mhd");
  EXPECT_EQ(mhd->extra_fields(), 3u);
  EXPECT_EQ(mhd->product_count(), 9u);  // the Elsasser tensor
  EXPECT_EQ(mhd->magnetic_base(), 3);
  EXPECT_EQ(mhd->field_name(3), "bx");
  EXPECT_EQ(mhd->field_name(5), "bz");
  const auto groups = mhd->spectra();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].name, "kinetic");
  EXPECT_EQ(groups[1].name, "magnetic");
}

TEST(Forcing, ValidationRejectsMeaninglessBands) {
  ForcingConfig f;
  f.enabled = false;
  f.klo = 0;  // never read while disabled
  EXPECT_NO_THROW(validate_forcing(f));

  f.enabled = true;
  EXPECT_THROW(validate_forcing(f), ForcingError);
  f.klo = 3;
  f.khi = 2;  // inverted band
  EXPECT_THROW(validate_forcing(f), ForcingError);
  f.khi = 4;
  f.power = 0.0;
  EXPECT_THROW(validate_forcing(f), ForcingError);
  f.power = 0.1;
  EXPECT_NO_THROW(validate_forcing(f));
}

TEST(Forcing, EngineRejectsBadBandAtConstruction) {
  comm::run_ranks(1, [](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.forcing.enabled = true;
    cfg.forcing.klo = 0;
    EXPECT_THROW(SlabSolver(comm, cfg), ForcingError);
  });
}

// --- NavierStokes regression against the pre-refactor core ---------------
//
// The two configurations below are the bitwise digest cases used to verify
// the refactor; the diagnostics are pinned from the pre-refactor build.
// The tolerance (1e-11 on O(0.1..1) quantities) absorbs FMA-contraction
// differences between -march=native and baseline builds while failing on
// any genuine change to the arithmetic.

TEST(SystemsRegression, NavierStokesRk2MatchesPreRefactorCore) {
  comm::run_ranks(1, [](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.02;
    cfg.scheme = TimeScheme::RK2;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(7, 3.0, 0.5);
    for (int s = 0; s < 5; ++s) solver.step(0.005);
    const auto d = solver.diagnostics();
    EXPECT_NEAR(d.energy, 0.49395919833698743, 1e-11);
    EXPECT_NEAR(d.dissipation, 0.23987796378171505, 1e-11);
    EXPECT_LT(d.max_divergence, 1e-12);
    // The default system publishes the kinetic spectrum and nothing else.
    EXPECT_TRUE(solver.system_diagnostics().empty());
    const auto spectra = solver.named_spectra();
    ASSERT_EQ(spectra.size(), 1u);
    EXPECT_EQ(spectra[0].first, "kinetic");
    double total = 0.0;
    for (const double e : spectra[0].second) total += e;
    EXPECT_NEAR(total, d.energy, 1e-12);
  });
}

TEST(SystemsRegression, NavierStokesRk4ForcedScalarMatchesPreRefactorCore) {
  comm::run_ranks(2, [](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.015;
    cfg.scheme = TimeScheme::RK4;
    cfg.phase_shift_dealias = true;
    cfg.forcing.enabled = true;
    cfg.forcing.klo = 1;
    cfg.forcing.khi = 2;
    cfg.forcing.power = 0.2;
    cfg.scalars.push_back(ScalarConfig{0.7, 1.0});
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(11, 3.0, 0.4);
    solver.init_scalar_isotropic(0, 13, 3.0, 0.2);
    for (int s = 0; s < 4; ++s) solver.step(0.004);
    const auto d = solver.diagnostics();
    const auto sd = solver.scalar_diagnostics(0);
    EXPECT_NEAR(d.energy, 0.4009051475146912, 1e-11);
    EXPECT_NEAR(d.dissipation, 0.14310226651962918, 1e-11);
    EXPECT_NEAR(sd.variance, 0.19833057681255509, 1e-11);
    EXPECT_NEAR(sd.flux_y, 0.00014199199641968998, 1e-12);
  });
}

// --- analytic wave validations -------------------------------------------

TEST(RotatingValidation, InertialWaveOscillatesAtTwoOmega) {
  // u = (eps cos z, 0, 0): a single k = (0, 0, 1) mode whose nonlinear
  // term vanishes identically (the field depends only on z and carries no
  // w), so the evolution is exactly the Rodrigues propagator: rotation
  // about khat = zhat at the inertial frequency sigma = 2 Omega kz/|k| =
  // 2 Omega, times viscous decay. The test asserts the closed form to
  // round-off - the Coriolis integration is exact, not order-dt.
  comm::run_ranks(2, [](comm::Communicator& comm) {
    const double omega = 2.0, nu = 0.01, eps = 0.1;
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = nu;
    cfg.system = SystemType::RotatingNS;
    cfg.rotation_omega = omega;
    SlabSolver solver(comm, cfg);
    solver.init_from_function([eps](double, double, double z) {
      return std::array<double, 3>{eps * std::cos(z), 0.0, 0.0};
    });

    const double dt = 0.05;  // exactness must not depend on dt
    const int steps = 20;
    for (int s = 0; s < steps; ++s) solver.step(dt);
    const double t = dt * steps;

    const Complex ux = probe_mode(solver, comm, 0, 0, 0, 1);
    const Complex uy = probe_mode(solver, comm, 1, 0, 0, 1);
    const double decay = std::exp(-nu * t);
    EXPECT_NEAR(ux.real(), 0.5 * eps * std::cos(2.0 * omega * t) * decay,
                1e-12);
    EXPECT_NEAR(uy.real(), -0.5 * eps * std::sin(2.0 * omega * t) * decay,
                1e-12);
    EXPECT_NEAR(ux.imag(), 0.0, 1e-13);
    // Rotation is energy-conserving: only viscosity drains the mode.
    EXPECT_NEAR(solver.diagnostics().energy,
                0.25 * eps * eps * decay * decay, 1e-13);
  });
}

TEST(RotatingValidation, HorizontalModeFeelsNoRotation) {
  // For kz = 0 the inertial frequency 2 Omega kz/|k| vanishes: a
  // w = eps cos x mode must decay viscously with no oscillation, however
  // fast the frame spins. This pins the kz/|k| factor of the dispersion
  // relation, not just "some rotation happened".
  comm::run_ranks(1, [](comm::Communicator& comm) {
    const double nu = 0.02, eps = 0.1;
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = nu;
    cfg.system = SystemType::RotatingNS;
    cfg.rotation_omega = 50.0;
    SlabSolver solver(comm, cfg);
    solver.init_from_function([eps](double x, double, double) {
      return std::array<double, 3>{0.0, 0.0, eps * std::cos(x)};
    });
    const double dt = 0.02;
    for (int s = 0; s < 10; ++s) solver.step(dt);
    const Complex w = probe_mode(solver, comm, 2, 1, 0, 0);
    EXPECT_NEAR(w.real(), 0.5 * eps * std::exp(-nu * 0.2), 1e-13);
    EXPECT_NEAR(probe_mode(solver, comm, 0, 1, 0, 0).real(), 0.0, 1e-13);
  });
}

TEST(BoussinesqValidation, InternalWaveOscillatesAtBruntVaisala) {
  // u = (0, 0, eps cos x), theta = 0: a single k = (1, 0, 0) mode (k_h =
  // |k|, so omega = N k_h/|k| = N) whose advection vanishes identically.
  // The exact solution of the remaining linear exchange is
  //   what(t)  =  (eps/2) cos(N t) exp(-nu t)
  //   theta(t) = -(eps/2) sin(N t) exp(-nu t)       (Pr = 1)
  // The buoyancy coupling is integrated explicitly inside the RHS, so the
  // tolerance reflects RK4's O(dt^4) error, not round-off.
  comm::run_ranks(2, [](comm::Communicator& comm) {
    const double bv = 2.0, nu = 0.01, eps = 0.1;
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = nu;
    cfg.scheme = TimeScheme::RK4;
    cfg.system = SystemType::Boussinesq;
    cfg.brunt_vaisala = bv;
    SlabSolver solver(comm, cfg);
    // The engine materializes the buoyancy scalar when none is configured.
    EXPECT_EQ(solver.scalar_count(), 1);
    EXPECT_EQ(solver.extra_field_count(), 1u);
    EXPECT_EQ(solver.system().field_name(3), "buoyancy");
    solver.init_from_function([eps](double x, double, double) {
      return std::array<double, 3>{0.0, 0.0, eps * std::cos(x)};
    });

    const double dt = 0.005;
    const int steps = 200;
    for (int s = 0; s < steps; ++s) solver.step(dt);
    const double t = dt * steps;
    const double decay = std::exp(-nu * t);

    const Complex w = probe_mode(solver, comm, 2, 1, 0, 0);
    const Complex th = probe_mode(solver, comm, 3, 1, 0, 0);
    EXPECT_NEAR(w.real(), 0.5 * eps * std::cos(bv * t) * decay, 1e-9);
    EXPECT_NEAR(th.real(), -0.5 * eps * std::sin(bv * t) * decay, 1e-9);

    // buoyancy_flux = <w theta> = -(eps^2/2) sin cos exp(-2 nu t).
    const auto sysd = solver.system_diagnostics();
    ASSERT_EQ(sysd.size(), 1u);
    EXPECT_EQ(sysd[0].name, "buoyancy_flux");
    EXPECT_NEAR(sysd[0].value,
                -0.5 * eps * eps * std::sin(bv * t) * std::cos(bv * t) *
                    decay * decay,
                1e-9);

    const auto spectra = solver.named_spectra();
    ASSERT_EQ(spectra.size(), 2u);
    EXPECT_EQ(spectra[1].first, "buoyancy");
  });
}

TEST(MhdValidation, AlfvenWaveOscillatesAtKDotB) {
  // Uniform mean field B0 zhat plus u = (eps cos z, 0, 0), b' = 0: the
  // fluctuation nonlinearities vanish identically and the Elsasser RHS
  // reduces to the shear-Alfven exchange for the k = (0, 0, 1) mode:
  //   uhat_x(t) =   (eps/2) cos(k.B0 t) exp(-nu t)
  //   bhat_x(t) = i (eps/2) sin(k.B0 t) exp(-nu t)   (eta = nu)
  // i.e. omega = k . B0, energy sloshing between kinetic and magnetic.
  comm::run_ranks(2, [](comm::Communicator& comm) {
    const double b0 = 1.0, nu = 0.01, eps = 0.1;
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = nu;
    cfg.scheme = TimeScheme::RK4;
    cfg.system = SystemType::Mhd;
    cfg.resistivity = 0.0;  // eta = nu
    SlabSolver solver(comm, cfg);
    solver.init_from_function([eps](double, double, double z) {
      return std::array<double, 3>{eps * std::cos(z), 0.0, 0.0};
    });
    solver.set_uniform_magnetic_field({0.0, 0.0, b0});

    const double dt = 0.005;
    const int steps = 200;
    for (int s = 0; s < steps; ++s) solver.step(dt);
    const double t = dt * steps;
    const double decay = std::exp(-nu * t);

    const Complex ux = probe_mode(solver, comm, 0, 0, 0, 1);
    const Complex bx = probe_mode(solver, comm, 3, 0, 0, 1);
    EXPECT_NEAR(ux.real(), 0.5 * eps * std::cos(b0 * t) * decay, 1e-9);
    EXPECT_NEAR(bx.imag(), 0.5 * eps * std::sin(b0 * t) * decay, 1e-9);

    // The k = 0 mean field is preserved exactly by the stepping.
    const Complex mean_bz = probe_mode(solver, comm, 5, 0, 0, 0);
    EXPECT_DOUBLE_EQ(mean_bz.real(), b0);

    // Total (kinetic + magnetic fluctuation) energy decays viscously; the
    // exchange itself conserves it.
    const auto sysd = solver.system_diagnostics();
    ASSERT_EQ(sysd.size(), 2u);
    EXPECT_EQ(sysd[0].name, "magnetic_energy");
    const double e_fluct = sysd[0].value - 0.5 * b0 * b0;  // drop the mean
    EXPECT_NEAR(solver.diagnostics().energy + e_fluct,
                0.25 * eps * eps * decay * decay, 1e-9);
  });
}

TEST(MhdValidation, InductionStaysDivergenceFreeInTurbulence) {
  // div b = 0 is structural (antisymmetric induction flux), not projected:
  // it must hold to round-off through fully nonlinear steps, phase-shift
  // dealiasing included.
  comm::run_ranks(2, [](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.02;
    cfg.phase_shift_dealias = true;
    cfg.system = SystemType::Mhd;
    cfg.resistivity = 0.03;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(5, 3.0, 0.5);
    solver.init_magnetic_isotropic(9, 3.0, 0.25);
    solver.set_uniform_magnetic_field({0.1, 0.0, 0.4});
    for (int s = 0; s < 5; ++s) solver.step(0.004);
    EXPECT_LT(max_divergence(solver.modes(), comm, solver.field(3),
                             solver.field(4), solver.field(5)),
              1e-12);
    EXPECT_LT(solver.diagnostics().max_divergence, 1e-12);
    // Both mean-field components survive the nonlinear evolution exactly.
    EXPECT_DOUBLE_EQ(probe_mode(solver, comm, 3, 0, 0, 0).real(), 0.1);
    EXPECT_DOUBLE_EQ(probe_mode(solver, comm, 5, 0, 0, 0).real(), 0.4);
  });
}

// --- slab / pencil equivalence -------------------------------------------

struct SystemRun {
  Diagnostics diag;
  std::vector<NamedValue> sys;
  std::vector<std::pair<std::string, std::vector<double>>> spectra;
};

/// Steps a solver with the given ICs and collects every published
/// statistic on rank 0.
template <class Solver>
void collect(Solver& solver, comm::Communicator& comm, SystemRun* out) {
  solver.init_isotropic(5, 3.0, 0.5);
  for (int s = 0; s < solver.scalar_count(); ++s) {
    solver.init_scalar_isotropic(s, 6, 3.0, 0.3);
  }
  if (solver.magnetic_base() >= 0) {
    solver.init_magnetic_isotropic(9, 3.0, 0.25);
    solver.set_uniform_magnetic_field({0.0, 0.0, 0.4});
  }
  for (int s = 0; s < 3; ++s) solver.step(0.005);
  const Diagnostics d = solver.diagnostics();
  auto sys = solver.system_diagnostics();
  auto spectra = solver.named_spectra();
  if (comm.rank() == 0) {
    out->diag = d;
    out->sys = std::move(sys);
    out->spectra = std::move(spectra);
  }
}

void expect_equivalent(const SystemRun& slab, const SystemRun& pencil) {
  EXPECT_NEAR(slab.diag.energy, pencil.diag.energy, 1e-10);
  EXPECT_NEAR(slab.diag.dissipation, pencil.diag.dissipation, 1e-10);
  EXPECT_NEAR(slab.diag.u_max, pencil.diag.u_max, 1e-10);
  ASSERT_EQ(slab.sys.size(), pencil.sys.size());
  for (std::size_t i = 0; i < slab.sys.size(); ++i) {
    EXPECT_EQ(slab.sys[i].name, pencil.sys[i].name);
    EXPECT_NEAR(slab.sys[i].value, pencil.sys[i].value, 1e-10);
  }
  ASSERT_EQ(slab.spectra.size(), pencil.spectra.size());
  for (std::size_t g = 0; g < slab.spectra.size(); ++g) {
    EXPECT_EQ(slab.spectra[g].first, pencil.spectra[g].first);
    ASSERT_EQ(slab.spectra[g].second.size(), pencil.spectra[g].second.size());
    for (std::size_t k = 0; k < slab.spectra[g].second.size(); ++k) {
      EXPECT_NEAR(slab.spectra[g].second[k], pencil.spectra[g].second[k],
                  1e-10)
          << slab.spectra[g].first << " shell " << k;
    }
  }
}

void check_decomposition_equivalence(const SolverConfig& cfg) {
  SystemRun slab, pencil;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(comm, cfg);
    collect(solver, comm, &slab);
  });
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    PencilSolverConfig pcfg;
    pcfg.n = cfg.n;
    pcfg.viscosity = cfg.viscosity;
    pcfg.scheme = cfg.scheme;
    pcfg.phase_shift_dealias = cfg.phase_shift_dealias;
    pcfg.forcing = cfg.forcing;
    pcfg.scalars = cfg.scalars;
    pcfg.system = cfg.system;
    pcfg.rotation_omega = cfg.rotation_omega;
    pcfg.brunt_vaisala = cfg.brunt_vaisala;
    pcfg.resistivity = cfg.resistivity;
    pcfg.pr = 2;
    pcfg.pc = 2;
    PencilSolver solver(comm, pcfg);
    collect(solver, comm, &pencil);
  });
  expect_equivalent(slab, pencil);
}

TEST(Decomposition, RotatingSlabMatchesPencil) {
  SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  cfg.system = SystemType::RotatingNS;
  cfg.rotation_omega = 1.5;
  check_decomposition_equivalence(cfg);
}

TEST(Decomposition, BoussinesqSlabMatchesPencil) {
  SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  cfg.scheme = TimeScheme::RK4;
  cfg.system = SystemType::Boussinesq;
  cfg.brunt_vaisala = 1.5;
  check_decomposition_equivalence(cfg);
}

TEST(Decomposition, MhdSlabMatchesPencil) {
  SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  cfg.phase_shift_dealias = true;  // exercise the shifted 9-product path
  cfg.system = SystemType::Mhd;
  cfg.resistivity = 0.03;
  check_decomposition_equivalence(cfg);
}

// --- checkpoint compatibility --------------------------------------------

TEST(Systems, MhdStateSurvivesTheExtraFieldSlots) {
  // The checkpoint header's extra-field count covers any system's fields;
  // an MHD save/load round trip must restore the induction components
  // (including the k = 0 mean) bit-exactly. Uses restore() directly via
  // the io layer in io_test; here we pin the field/restore API itself.
  comm::run_ranks(1, [](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.02;
    cfg.system = SystemType::Mhd;
    SlabSolver a(comm, cfg);
    a.init_isotropic(3, 3.0, 0.5);
    a.init_magnetic_isotropic(4, 3.0, 0.25);
    a.set_uniform_magnetic_field({0.0, 0.2, 0.3});
    a.step(0.004);

    ASSERT_EQ(a.field_count(), 6u);
    std::vector<const Complex*> fields;
    for (std::size_t f = 0; f < a.field_count(); ++f) {
      fields.push_back(a.field(f));
    }
    SlabSolver b(comm, cfg);
    b.restore(fields, a.time(), a.step_count());
    for (std::size_t f = 0; f < a.field_count(); ++f) {
      const std::size_t m = a.modes().local_modes();
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_EQ(b.field(f)[i], a.field(f)[i]);
      }
    }
    EXPECT_DOUBLE_EQ(b.time(), a.time());
  });
}

}  // namespace
}  // namespace psdns::dns
