#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace_export.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/check.hpp"

namespace psdns::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- JSON primitives ---

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
}

TEST(Json, NumbersRoundTripAndNonFiniteBecomesNull) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(1.5), "1.5");
  const double pi = 3.141592653589793;
  EXPECT_DOUBLE_EQ(std::strtod(json_number(pi).c_str(), nullptr), pi);
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, ParsesDocuments) {
  const auto v = json_parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "x\ny", "o": {"k": -2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").number, 1.5);
  ASSERT_TRUE(v.at("b").is_array());
  ASSERT_EQ(v.at("b").array.size(), 3u);
  EXPECT_TRUE(v.at("b").array[0].boolean);
  EXPECT_TRUE(v.at("b").array[2].is_null());
  EXPECT_EQ(v.at("s").string, "x\ny");
  EXPECT_DOUBLE_EQ(v.at("o").at("k").number, -2.0);
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("missing"));
  EXPECT_THROW(v.at("missing"), util::Error);
}

TEST(Json, ParsesUnicodeEscapes) {
  // A unicode escape for e-acute decodes to its two UTF-8 bytes; raw
  // multi-byte input passes through untouched. (The escape sequence is
  // assembled from adjacent literals so this source file stays ASCII.)
  const std::string escaped = std::string("\"A\\") + "u00e9\"";
  EXPECT_EQ(json_parse(escaped).string, "A\xc3\xa9");
  EXPECT_EQ(json_parse("\"A\xc3\xa9\"").string, "A\xc3\xa9");
  const std::string ascii_escape = std::string("\"\\") + "u0041\"";
  EXPECT_EQ(json_parse(ascii_escape).string, "A");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), util::Error);
  EXPECT_THROW(json_parse("{"), util::Error);
  EXPECT_THROW(json_parse("[1,]"), util::Error);
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), util::Error);
  EXPECT_THROW(json_parse("\"unterminated"), util::Error);
  EXPECT_THROW(json_parse("nul"), util::Error);
  EXPECT_THROW(json_parse("\"raw\ncontrol\""), util::Error);
}

// --- metrics registry ---

TEST(Registry, CountersAndGauges) {
  Registry reg;
  EXPECT_EQ(reg.counter("c"), 0);
  reg.counter_add("c");
  reg.counter_add("c", 41);
  EXPECT_EQ(reg.counter("c"), 42);
  reg.gauge_set("g", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 2.5);
  reg.gauge_set("g", -1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), -1.0);
  reg.reset();
  EXPECT_EQ(reg.counter("c"), 0);
}

TEST(Registry, HistogramPercentiles) {
  Registry reg;
  // One bucket per unit: observations k=1..100 land one per bucket, so the
  // interpolated percentiles are exact.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  reg.declare_histogram("h", bounds);
  for (int k = 1; k <= 100; ++k) reg.observe("h", static_cast<double>(k));
  const auto s = reg.histogram("h");
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
}

TEST(Registry, SmallSamplePercentilesAreExactR7) {
  // Below the raw-sample reservoir cap the summary must use the documented
  // exact rule: sorted samples, rank p/100 * (count-1), linear
  // interpolation between the adjacent ranks (numpy default / R type 7).
  Registry reg;
  for (double v : {10.0, 20.0, 30.0, 40.0}) reg.observe("q", v);
  const auto s = reg.histogram("q");
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.p50, 25.0);  // rank 1.5 between 20 and 30
  EXPECT_DOUBLE_EQ(s.p95, 38.5);  // rank 2.85 between 30 and 40
  EXPECT_DOUBLE_EQ(s.p99, 39.7);  // rank 2.97

  Registry one;
  one.observe("single", 7.5);
  const auto s1 = one.histogram("single");
  EXPECT_DOUBLE_EQ(s1.p50, 7.5);
  EXPECT_DOUBLE_EQ(s1.p95, 7.5);
  EXPECT_DOUBLE_EQ(s1.p99, 7.5);

  Registry two;
  two.observe("pair", 1.0);
  two.observe("pair", 3.0);
  EXPECT_DOUBLE_EQ(two.histogram("pair").p50, 2.0);
}

TEST(Registry, PercentilesFallBackToBucketsPastTheReservoir) {
  // Past Registry::kExactSampleCap observations the reservoir no longer
  // holds everything; the summary interpolates inside the matching bucket
  // and must stay within the observed range.
  Registry reg;
  std::vector<double> bounds;
  for (int i = 10; i <= 1000; i += 10) bounds.push_back(i);
  reg.declare_histogram("big", bounds);
  const int n = 1000;  // > kExactSampleCap (256)
  for (int k = 1; k <= n; ++k) reg.observe("big", static_cast<double>(k));
  const auto s = reg.histogram("big");
  EXPECT_EQ(s.count, n);
  EXPECT_NEAR(s.p50, 500.0, 10.0);
  EXPECT_NEAR(s.p95, 950.0, 10.0);
  EXPECT_NEAR(s.p99, 990.0, 10.0);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(Registry, ConcurrentObserversAreSafe) {
  // Counters, gauges, histograms and timers hammered from many threads:
  // nothing may be lost and the summary must stay self-consistent. Run
  // under TSan this is also the data-race check for the registry.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter_add("ops", 1);
        reg.gauge_set("last." + std::to_string(t), i);
        reg.observe("lat", static_cast<double>(i % 100));
        if (i % 100 == 0) ScopedTimer timer("timed", reg);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("ops"), kThreads * kIters);
  const auto s = reg.histogram("lat");
  EXPECT_EQ(s.count, kThreads * kIters);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 99.0);
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(reg.histogram("timed").count, kThreads * (kIters / 100));
}

TEST(Registry, HistogramDefaultBoundsAndClamping) {
  Registry reg;
  // Undeclared histograms spring into existence with default bounds.
  reg.observe("auto", 1e-9);   // below the lowest bound
  reg.observe("auto", 1e9);    // above the highest (overflow bucket)
  const auto s = reg.histogram("auto");
  EXPECT_EQ(s.count, 2);
  // Percentile estimates stay within the observed range.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
  EXPECT_THROW(reg.declare_histogram("auto", {1.0}), util::Error);
}

TEST(Registry, SnapshotAndJson) {
  Registry reg;
  reg.counter_add("ops", 3);
  reg.gauge_set("temp", 1.25);
  reg.observe("lat", 0.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 3);
  EXPECT_DOUBLE_EQ(snap.gauges.at("temp"), 1.25);
  EXPECT_EQ(snap.histograms.at("lat").count, 1);

  const auto v = json_parse(reg.to_json());
  EXPECT_DOUBLE_EQ(v.at("counters").at("ops").number, 3.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("temp").number, 1.25);
  EXPECT_DOUBLE_EQ(v.at("histograms").at("lat").at("count").number, 1.0);
  EXPECT_TRUE(v.at("histograms").at("lat").has("p99"));
}

TEST(Registry, ScopedTimerRecordsIntoHistogram) {
  Registry reg;
  {
    ScopedTimer t("block.seconds", reg);
  }
  ScopedTimer t2("block.seconds", reg);
  const double elapsed = t2.stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(t2.stop(), 0.0);  // second stop is a no-op
  const auto s = reg.histogram("block.seconds");
  EXPECT_EQ(s.count, 2);
  EXPECT_GE(s.sum, 0.0);
}

TEST(Registry, SpanCaptureCollectsTimerSpans) {
  enable_span_capture(true);
  {
    ScopedTimer t("traced.work");
  }
  {
    ScopedTimer t("traced.more");
  }
  enable_span_capture(false);
  const auto spans = captured_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "traced.work");
  EXPECT_EQ(spans[1].name, "traced.more");
  EXPECT_GE(spans[0].dur_s, 0.0);
  EXPECT_LE(spans[0].start_s, spans[1].start_s);

  // Spans convert to a parseable Chrome trace with per-thread tracks.
  const auto v = json_parse(spans_to_chrome_trace(spans));
  ASSERT_TRUE(v.is_array());
  std::size_t complete = 0;
  for (const auto& e : v.array) {
    if (e.at("ph").string == "X") ++complete;
  }
  EXPECT_EQ(complete, 2u);

  clear_spans();
  EXPECT_TRUE(captured_spans().empty());
}

TEST(Registry, ThreadIndexIsDenseAndStable) {
  const int self = thread_index();
  EXPECT_GE(self, 0);
  EXPECT_EQ(thread_index(), self);
  int other = -1;
  std::thread([&] { other = thread_index(); }).join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, self);
}

// --- structured logging ---

class LogToFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "obs_log_test.jsonl";
    std::remove(path_.c_str());
    set_log_file(path_);
  }
  void TearDown() override {
    set_log_file("");
    set_log_level(LogLevel::Warn);
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(LogToFile, LevelFilteringAndJsonLines) {
  set_log_level(LogLevel::Info);
  log_event(LogLevel::Debug, "test", "filtered out");
  log_event(LogLevel::Info, "test", "kept",
            {{"n", 42}, {"ratio", 0.5}, {"tag", "a\"b"}, {"ok", true}});
  set_log_level(LogLevel::Off);
  log_event(LogLevel::Error, "test", "also filtered");

  const std::string text = read_file(path_);
  std::istringstream lines(text);
  std::string line;
  std::vector<JsonValue> events;
  while (std::getline(lines, line)) {
    if (!line.empty()) events.push_back(json_parse(line));
  }
  ASSERT_EQ(events.size(), 1u);
  const auto& e = events[0];
  EXPECT_EQ(e.at("level").string, "info");
  EXPECT_EQ(e.at("subsystem").string, "test");
  EXPECT_EQ(e.at("msg").string, "kept");
  EXPECT_DOUBLE_EQ(e.at("n").number, 42.0);
  EXPECT_DOUBLE_EQ(e.at("ratio").number, 0.5);
  EXPECT_EQ(e.at("tag").string, "a\"b");
  EXPECT_TRUE(e.at("ok").boolean);
  EXPECT_TRUE(e.has("ts_ms"));
  EXPECT_TRUE(e.has("thread"));
}

TEST_F(LogToFile, RankTagStampedOnLines) {
  set_log_level(LogLevel::Info);
  const int before = rank_tag();
  set_rank_tag(7);
  log_event(LogLevel::Info, "test", "tagged");
  set_rank_tag(before);

  const auto e = json_parse(read_file(path_).substr(
      0, read_file(path_).find('\n')));
  EXPECT_DOUBLE_EQ(e.at("rank").number, 7.0);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_THROW(parse_log_level("verbose"), util::Error);
  EXPECT_STREQ(to_string(LogLevel::Warn), "warn");
}

TEST(Log, EnabledRespectsThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_FALSE(log_enabled(LogLevel::Info));
  EXPECT_TRUE(log_enabled(LogLevel::Warn));
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  set_log_level(before);
}

// --- Chrome trace export ---

TEST(TraceExport, OpRecordsBecomeValidChromeTrace) {
  std::vector<sim::OpRecord> recs(3);
  recs[0] = {"a2a pencil 0", "rank0.mpi", sim::OpCategory::Mpi, 0.0, 1.5};
  recs[1] = {"fft \"quoted\"", "rank0.compute", sim::OpCategory::Compute,
             0.5, 2.0};
  recs[2] = {"h2d", "rank0.transfer", sim::OpCategory::H2D, 2.0, 2.25};
  const std::string text = to_chrome_trace(recs);

  const auto v = json_parse(text);
  ASSERT_TRUE(v.is_array());
  ASSERT_FALSE(v.array.empty());
  // Every event carries the complete-event schema the viewers expect.
  for (const auto& e : v.array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("ph"));
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
  }
  std::size_t complete = 0;
  bool saw_quoted = false;
  for (const auto& e : v.array) {
    if (e.at("ph").string != "X") continue;
    ++complete;
    if (e.at("name").string == "fft \"quoted\"") {
      saw_quoted = true;
      EXPECT_DOUBLE_EQ(e.at("ts").number, 0.5e6);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 1.5e6);
    }
  }
  EXPECT_EQ(complete, recs.size());
  EXPECT_TRUE(saw_quoted);
}

TEST(TraceExport, OneTrackPerLane) {
  std::vector<sim::OpRecord> recs(3);
  recs[0] = {"a", "lane.x", sim::OpCategory::Mpi, 0.0, 1.0};
  recs[1] = {"b", "lane.y", sim::OpCategory::Compute, 0.0, 1.0};
  recs[2] = {"c", "lane.x", sim::OpCategory::Mpi, 1.0, 2.0};
  const auto v = json_parse(to_chrome_trace(recs));
  double tid_x = -1.0, tid_y = -1.0;
  for (const auto& e : v.array) {
    if (e.at("ph").string != "X") continue;
    if (e.at("name").string == "a") tid_x = e.at("tid").number;
    if (e.at("name").string == "b") tid_y = e.at("tid").number;
    if (e.at("name").string == "c") {
      EXPECT_DOUBLE_EQ(e.at("tid").number, tid_x);
    }
  }
  EXPECT_NE(tid_x, tid_y);
}

TEST(TraceExport, SimulatedStepExportsRoundTrip) {
  // The fig10 path end-to-end: a real co-simulated step's records parse as
  // a Chrome trace with events on every stream.
  pipeline::DnsStepModel model;
  pipeline::PipelineConfig cfg;
  cfg.n = 3072;
  cfg.nodes = 16;
  cfg.pencils = 6;
  cfg.mpi = pipeline::MpiConfig::B;
  const auto r = model.simulate_gpu_step(cfg);
  ASSERT_FALSE(r.records.empty());
  const auto v = json_parse(to_chrome_trace(r.records));
  std::size_t complete = 0;
  for (const auto& e : v.array) {
    if (e.at("ph").string == "X") ++complete;
  }
  EXPECT_EQ(complete, r.records.size());
}

TEST(TraceExport, ColorsAreStableChromeNames) {
  EXPECT_STREQ(chrome_color(sim::OpCategory::Mpi), "terrible");
  EXPECT_NE(chrome_color(sim::OpCategory::Compute), nullptr);
  EXPECT_NE(chrome_color(sim::OpCategory::H2D),
            chrome_color(sim::OpCategory::Compute));
}

namespace {
SpanRecord span_rec(SpanId id, const std::string& name, SpanKind kind,
                    int thread, int rank, double start, double end) {
  SpanRecord s;
  s.id = id;
  s.name = name;
  s.kind = kind;
  s.thread = thread;
  s.rank = rank;
  s.start_s = start;
  s.end_s = end;
  return s;
}
}  // namespace

TEST(TraceExport, SpanTraceRoundTripsWithFlowEvents) {
  // A two-rank trace with one causal edge: every emitted document must
  // parse back through obs::json_parse, complete events must map rank ->
  // pid (options.pid + rank + 1) and thread -> tid, and the edge must
  // become a Chrome flow pair: ph "s" leaving the source span's end, ph
  // "f" (with bp "e") landing on the destination span's start, same id.
  SpanTrace trace;
  trace.spans.push_back(
      span_rec(1, "pack", SpanKind::Transfer, 3, 0, 0.0, 1.0));
  trace.spans.push_back(span_rec(2, "a2a", SpanKind::Comm, 5, 1, 1.0, 2.5));
  trace.edges.push_back({42, 1, 2});

  ChromeTraceOptions opt;
  opt.pid = 100;
  const auto v = json_parse(to_chrome_trace(trace, opt));
  ASSERT_TRUE(v.is_array());

  const JsonValue* pack = nullptr;
  const JsonValue* a2a = nullptr;
  const JsonValue* flow_s = nullptr;
  const JsonValue* flow_f = nullptr;
  for (const auto& e : v.array) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").string;
    if (ph == "X" && e.at("name").string == "pack") pack = &e;
    if (ph == "X" && e.at("name").string == "a2a") a2a = &e;
    if (ph == "s") flow_s = &e;
    if (ph == "f") flow_f = &e;
  }
  ASSERT_NE(pack, nullptr);
  ASSERT_NE(a2a, nullptr);
  EXPECT_DOUBLE_EQ(pack->at("pid").number, 101.0);  // rank 0 -> pid+1
  EXPECT_DOUBLE_EQ(pack->at("tid").number, 3.0);
  EXPECT_DOUBLE_EQ(a2a->at("pid").number, 102.0);  // rank 1 -> pid+2
  EXPECT_DOUBLE_EQ(a2a->at("tid").number, 5.0);
  EXPECT_EQ(pack->at("cat").string, std::string(to_string(SpanKind::Transfer)));

  ASSERT_NE(flow_s, nullptr);
  ASSERT_NE(flow_f, nullptr);
  EXPECT_EQ(flow_s->at("cat").string, "flow");
  EXPECT_DOUBLE_EQ(flow_s->at("id").number, flow_f->at("id").number);
  // Arrow leaves the source at its end, lands on the destination at its
  // start (binding point "e" = enclosing slice).
  EXPECT_DOUBLE_EQ(flow_s->at("ts").number, 1.0e6);
  EXPECT_DOUBLE_EQ(flow_s->at("pid").number, 101.0);
  EXPECT_DOUBLE_EQ(flow_s->at("tid").number, 3.0);
  EXPECT_DOUBLE_EQ(flow_f->at("ts").number, 1.0e6);
  EXPECT_DOUBLE_EQ(flow_f->at("pid").number, 102.0);
  EXPECT_DOUBLE_EQ(flow_f->at("tid").number, 5.0);
  EXPECT_EQ(flow_f->at("bp").string, "e");
  EXPECT_FALSE(flow_s->has("bp"));
}

TEST(TraceExport, UntaggedSpansShareTheBasePid) {
  // rank = -1 (untagged, e.g. a single-process tool) stays on options.pid;
  // process metadata still names every used pid.
  SpanTrace trace;
  trace.spans.push_back(
      span_rec(1, "solo", SpanKind::Compute, 0, -1, 0.0, 1.0));
  trace.spans.push_back(span_rec(2, "r0", SpanKind::Compute, 0, 0, 0.0, 1.0));
  ChromeTraceOptions opt;
  opt.pid = 7;
  const auto v = json_parse(to_chrome_trace(trace, opt));
  std::set<double> meta_pids;
  for (const auto& e : v.array) {
    if (e.at("ph").string == "M" && e.at("name").string == "process_name") {
      meta_pids.insert(e.at("pid").number);
    }
    if (e.at("ph").string == "X" && e.at("name").string == "solo") {
      EXPECT_DOUBLE_EQ(e.at("pid").number, 7.0);
    }
    if (e.at("ph").string == "X" && e.at("name").string == "r0") {
      EXPECT_DOUBLE_EQ(e.at("pid").number, 8.0);
    }
  }
  EXPECT_EQ(meta_pids, (std::set<double>{7.0, 8.0}));
}

TEST(TraceExport, DanglingEdgesAreDroppedFromTheExport) {
  // Edges whose spans were lost to ring wrap must not emit half a flow
  // pair; the export silently skips them.
  SpanTrace trace;
  trace.spans.push_back(
      span_rec(1, "kept", SpanKind::Compute, 0, 0, 0.0, 1.0));
  trace.edges.push_back({9, 1, 999});  // dst was dropped
  trace.edges.push_back({10, 998, 1});  // src was dropped
  const auto v = json_parse(to_chrome_trace(trace));
  for (const auto& e : v.array) {
    EXPECT_NE(e.at("ph").string, "s");
    EXPECT_NE(e.at("ph").string, "f");
  }
}

// --- bench reports ---

TEST(BenchReport, JsonSchemaAndDedup) {
  BenchReport report("unit_test");
  report.meta("description", "schema check");
  report.metric("alpha", 1.0);
  report.metric("alpha", 2.0);  // last write wins
  report.metric("beta.sub", -0.25);
  report.seed(42);

  const auto v = json_parse(report.to_json());
  EXPECT_EQ(v.at("name").string, "unit_test");
  EXPECT_DOUBLE_EQ(v.at("schema_version").number, 2.0);
  EXPECT_TRUE(v.at("git_sha").is_string());
  EXPECT_FALSE(v.at("git_sha").string.empty());
  EXPECT_EQ(v.at("metadata").at("description").string, "schema check");
  EXPECT_DOUBLE_EQ(v.at("metrics").at("alpha").number, 2.0);
  EXPECT_DOUBLE_EQ(v.at("metrics").at("beta.sub").number, -0.25);
}

TEST(BenchReport, ManifestCarriesProvenance) {
  ASSERT_EQ(setenv("PSDNS_MANIFEST_PROBE", "on", 1), 0);
  BenchReport report("manifest_test");
  report.seed(1234);
  unsetenv("PSDNS_MANIFEST_PROBE");

  const auto v = json_parse(report.to_json());
  const auto& m = v.at("manifest");
  EXPECT_EQ(m.at("git_sha").string, v.at("git_sha").string);
  EXPECT_FALSE(m.at("compiler").string.empty());
  EXPECT_FALSE(m.at("hostname").string.empty());
  EXPECT_EQ(m.at("seed").string, "1234");
  // Every PSDNS_* variable in effect at collection is recorded.
  EXPECT_EQ(m.at("env").at("PSDNS_MANIFEST_PROBE").string, "on");
}

TEST(BenchReport, WritesToBenchDir) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("PSDNS_BENCH_DIR", dir.c_str(), 1), 0);
  BenchReport report("dir_test");
  report.metric("x", 1.0);
  const std::string path = report.write();
  unsetenv("PSDNS_BENCH_DIR");

  EXPECT_EQ(path,
            (std::filesystem::path(dir) / "BENCH_dir_test.json").string());
  const auto v = json_parse(read_file(path));
  EXPECT_DOUBLE_EQ(v.at("metrics").at("x").number, 1.0);
  std::remove(path.c_str());
}

TEST(BenchReport, GitShaResolvesInThisCheckout) {
  // The tests run from the build tree inside the repo: the upward .git
  // search should find the real HEAD (40 hex chars), and the env override
  // must win over it.
  const std::string sha = current_git_sha();
  EXPECT_FALSE(sha.empty());
  ASSERT_EQ(setenv("PSDNS_GIT_SHA", "deadbeef", 1), 0);
  EXPECT_EQ(current_git_sha(), "deadbeef");
  unsetenv("PSDNS_GIT_SHA");
}

}  // namespace
}  // namespace psdns::obs
