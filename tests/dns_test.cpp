#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/pencil_solver.hpp"
#include "dns/solver.hpp"
#include "dns/spectral_ops.hpp"
#include "dns/regrid.hpp"
#include "dns/two_point.hpp"
#include "dns/vorticity.hpp"
#include "dns/statistics.hpp"
#include "util/rng.hpp"

namespace psdns::dns {
namespace {

std::array<double, 3> abc_flow(double x, double y, double z) {
  // Arnold-Beltrami-Childress flow: solenoidal, fully three-dimensional.
  const double a = 1.0, b = 0.7, c = 0.43;
  return {a * std::sin(z) + c * std::cos(y), b * std::sin(x) + a * std::cos(z),
          c * std::sin(y) + b * std::cos(x)};
}

// --- mode enumeration ---

TEST(Modes, WrapWavenumber) {
  EXPECT_EQ(wrap_wavenumber(0, 8), 0);
  EXPECT_EQ(wrap_wavenumber(3, 8), 3);
  EXPECT_EQ(wrap_wavenumber(4, 8), 4);
  EXPECT_EQ(wrap_wavenumber(5, 8), -3);
  EXPECT_EQ(wrap_wavenumber(7, 8), -1);
}

TEST(Modes, ModeWeightCountsConjugatePairs) {
  EXPECT_DOUBLE_EQ(mode_weight(0, 8), 1.0);
  EXPECT_DOUBLE_EQ(mode_weight(4, 8), 1.0);  // Nyquist plane
  EXPECT_DOUBLE_EQ(mode_weight(1, 8), 2.0);
  EXPECT_DOUBLE_EQ(mode_weight(3, 8), 2.0);
}

TEST(Modes, ZslabEnumeratesAllModesOnce) {
  const std::size_t n = 8, mz = 4, z0 = 4;
  const auto view = ModeView::zslab(n, mz, z0);
  EXPECT_EQ(view.local_modes(), (n / 2 + 1) * n * mz);
  std::vector<int> seen(view.local_modes(), 0);
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    ASSERT_LT(idx, seen.size());
    ++seen[idx];
    EXPECT_GE(kx, 0);
    EXPECT_LE(kx, 4);
    EXPECT_GE(ky, -3);
    EXPECT_LE(ky, 4);
    // This rank owns the upper half of z: indices 4..7 -> kz 4, -3, -2, -1.
    EXPECT_TRUE(kz == 4 || (kz >= -3 && kz <= -1));
  });
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(Modes, ZpencilMatchesZslabModeSet) {
  // Full single-rank views of both layouts must enumerate the same (k)
  // multiset.
  const std::size_t n = 8;
  const auto slab = ModeView::zslab(n, n, 0);
  const auto pencil = ModeView::zpencil(n, n / 2 + 1, 0, n, 0);
  std::vector<std::tuple<int, int, int>> a, b;
  for_each_mode(slab, [&](std::size_t, int kx, int ky, int kz) {
    a.emplace_back(kx, ky, kz);
  });
  for_each_mode(pencil, [&](std::size_t, int kx, int ky, int kz) {
    b.emplace_back(kx, ky, kz);
  });
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// --- spectral operators (single rank) ---

class OpsFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t n = 16;
  ModeView view = ModeView::zslab(n, n, 0);
  std::vector<Complex> u, v, w;

  void SetUp() override {
    const std::size_t m = view.local_modes();
    u.resize(m);
    v.resize(m);
    w.resize(m);
    util::Rng rng(17);
    for (std::size_t i = 0; i < m; ++i) {
      u[i] = Complex{rng.gaussian(), rng.gaussian()};
      v[i] = Complex{rng.gaussian(), rng.gaussian()};
      w[i] = Complex{rng.gaussian(), rng.gaussian()};
    }
  }
};

TEST_F(OpsFixture, ProjectionKillsDivergence) {
  project(view, u.data(), v.data(), w.data());
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex div = static_cast<double>(kx) * u[idx] +
                        static_cast<double>(ky) * v[idx] +
                        static_cast<double>(kz) * w[idx];
    EXPECT_LT(std::abs(div), 1e-12);
  });
}

TEST_F(OpsFixture, ProjectionIsIdempotent) {
  project(view, u.data(), v.data(), w.data());
  auto u2 = u, v2 = v, w2 = w;
  project(view, u2.data(), v2.data(), w2.data());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_LT(std::abs(u2[i] - u[i]), 1e-13);
    EXPECT_LT(std::abs(v2[i] - v[i]), 1e-13);
    EXPECT_LT(std::abs(w2[i] - w[i]), 1e-13);
  }
}

TEST_F(OpsFixture, TruncationZeroesOnlyHighModes) {
  auto f = u;
  dealias_truncate(view, f.data());
  const int kmax = (static_cast<int>(n) - 1) / 3;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const bool high =
        std::abs(kx) > kmax || std::abs(ky) > kmax || std::abs(kz) > kmax;
    if (high) {
      EXPECT_EQ(f[idx], (Complex{0.0, 0.0}));
    } else {
      EXPECT_EQ(f[idx], u[idx]);
    }
  });
}

TEST_F(OpsFixture, IntegratingFactorMatchesExponential) {
  auto f = u;
  const double nu = 0.03, dt = 0.7;
  apply_integrating_factor(view, f.data(), nu, dt);
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    EXPECT_LT(std::abs(f[idx] - u[idx] * std::exp(-nu * k2 * dt)), 1e-13);
  });
}

TEST_F(OpsFixture, PhaseShiftRoundTripIsIdentity) {
  auto f = u;
  const double delta[3] = {0.3, -0.1, 0.7};
  phase_shift(view, f.data(), delta, +1);
  phase_shift(view, f.data(), delta, -1);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_LT(std::abs(f[i] - u[i]), 1e-12);
  }
}

TEST_F(OpsFixture, NonlinearRhsIsDivergenceFree) {
  std::vector<Complex> ru(u.size()), rv(u.size()), rw(u.size());
  nonlinear_rhs(view, ProductSet{u.data(), v.data(), w.data(), u.data(),
                                 v.data(), w.data()},
                ru.data(), rv.data(), rw.data());
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex div = static_cast<double>(kx) * ru[idx] +
                        static_cast<double>(ky) * rv[idx] +
                        static_cast<double>(kz) * rw[idx];
    EXPECT_LT(std::abs(div), 1e-10);
  });
}

// --- Taylor-Green validation (the analytic Navier-Stokes solution) ---

class TaylorGreenP : public ::testing::TestWithParam<int> {};

TEST_P(TaylorGreenP, EnergyDecaysAtExactViscousRate) {
  const int P = GetParam();
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.05;
    SlabSolver solver(comm, cfg);
    solver.init_taylor_green();
    const double e0 = solver.diagnostics().energy;
    EXPECT_NEAR(e0, 0.25, 1e-10);  // <(sin x cos y)^2> * 2 / 2

    const double dt = 0.01;
    for (int s = 0; s < 20; ++s) solver.step(dt);
    const double want = 0.25 * std::exp(-4.0 * cfg.viscosity * solver.time());
    EXPECT_NEAR(solver.diagnostics().energy, want, 1e-8);
  });
}

TEST_P(TaylorGreenP, VelocityStaysDivergenceFree) {
  const int P = GetParam();
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_taylor_green();
    for (int s = 0; s < 5; ++s) solver.step(0.02);
    EXPECT_LT(solver.diagnostics().max_divergence, 1e-10);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, TaylorGreenP, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "P" + std::to_string(pinfo.param);
                         });

TEST(TaylorGreen, RK4MatchesAnalyticDecayTighter) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.05;
    cfg.scheme = TimeScheme::RK4;
    SlabSolver solver(comm, cfg);
    solver.init_taylor_green();
    for (int s = 0; s < 10; ++s) solver.step(0.02);
    const double want = 0.25 * std::exp(-4.0 * cfg.viscosity * solver.time());
    EXPECT_NEAR(solver.diagnostics().energy, want, 1e-11);
  });
}

// --- convergence order of the time schemes ---

std::vector<Complex> final_field(comm::Communicator& comm, TimeScheme scheme,
                                 double dt, int steps) {
  SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  cfg.scheme = scheme;
  SlabSolver solver(comm, cfg);
  solver.init_isotropic(/*seed=*/11, /*k_peak=*/3.0, /*energy=*/0.5);
  for (int s = 0; s < steps; ++s) solver.step(dt);
  std::vector<Complex> out;
  for (int c = 0; c < 3; ++c) {
    out.insert(out.end(), solver.uhat(c),
               solver.uhat(c) + solver.modes().local_modes());
  }
  return out;
}

double field_error(comm::Communicator& comm, const std::vector<Complex>& a,
                   const std::vector<Complex>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::norm(a[i] - b[i]);
  return std::sqrt(comm.allreduce_sum(sum));
}

TEST(Convergence, RK2IsSecondOrder) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const double t_end = 0.16;
    const auto ref = final_field(comm, TimeScheme::RK4, t_end / 64, 64);
    const double e1 =
        field_error(comm, final_field(comm, TimeScheme::RK2, t_end / 4, 4),
                    ref);
    const double e2 =
        field_error(comm, final_field(comm, TimeScheme::RK2, t_end / 8, 8),
                    ref);
    const double order = std::log2(e1 / e2);
    EXPECT_GT(order, 1.7);
    EXPECT_LT(order, 2.4);
  });
}

TEST(Convergence, RK4IsFourthOrder) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const double t_end = 0.32;
    const auto ref = final_field(comm, TimeScheme::RK4, t_end / 128, 128);
    const double e1 =
        field_error(comm, final_field(comm, TimeScheme::RK4, t_end / 4, 4),
                    ref);
    const double e2 =
        field_error(comm, final_field(comm, TimeScheme::RK4, t_end / 8, 8),
                    ref);
    const double order = std::log2(e1 / e2);
    EXPECT_GT(order, 3.4);
    EXPECT_LT(order, 4.8);
  });
}

// --- decomposition invariance ---

TEST(Invariance, RankCountDoesNotChangePhysics) {
  auto run = [&](int P) {
    double energy = 0.0, eps = 0.0;
    comm::run_ranks(P, [&](comm::Communicator& comm) {
      SolverConfig cfg;
      cfg.n = 16;
      cfg.viscosity = 0.02;
      SlabSolver solver(comm, cfg);
      solver.init_isotropic(7, 3.0, 0.5);
      for (int s = 0; s < 3; ++s) solver.step(0.02);
      if (comm.rank() == 0) {
        // Collective calls must still involve all ranks.
      }
      const auto d = solver.diagnostics();
      if (comm.rank() == 0) {
        energy = d.energy;
        eps = d.dissipation;
      }
    });
    return std::pair{energy, eps};
  };
  const auto [e1, d1] = run(1);
  const auto [e2, d2] = run(2);
  const auto [e4, d4] = run(4);
  EXPECT_NEAR(e2, e1, 1e-12);
  EXPECT_NEAR(e4, e1, 1e-12);
  EXPECT_NEAR(d2, d1, 1e-11);
  EXPECT_NEAR(d4, d1, 1e-11);
}

TEST(Invariance, PencilBatchingDoesNotChangePhysics) {
  auto run = [&](int np, int q) {
    double energy = 0.0;
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      SolverConfig cfg;
      cfg.n = 16;
      cfg.viscosity = 0.02;
      cfg.pencils = np;
      cfg.pencils_per_a2a = q;
      SlabSolver solver(comm, cfg);
      solver.init_isotropic(7, 3.0, 0.5);
      for (int s = 0; s < 2; ++s) solver.step(0.02);
      if (comm.rank() == 0) energy = solver.diagnostics().energy;
      else solver.diagnostics();
    });
    return energy;
  };
  const double base = run(1, 1);
  EXPECT_DOUBLE_EQ(run(3, 1), base);
  EXPECT_DOUBLE_EQ(run(4, 2), base);
  EXPECT_DOUBLE_EQ(run(4, 4), base);
}

TEST(Invariance, PencilSolverMatchesSlabSolver) {
  // The 2-D-decomposed baseline and the slab code must advance the same
  // flow identically (they share the physics, differ in decomposition).
  double slab_e = 0.0, slab_eps = 0.0;
  std::vector<double> slab_spec;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.03;
    SlabSolver solver(comm, cfg);
    solver.init_from_function(abc_flow);
    for (int s = 0; s < 3; ++s) solver.step(0.01);
    const auto d = solver.diagnostics();
    auto spec = solver.spectrum();
    if (comm.rank() == 0) {
      slab_e = d.energy;
      slab_eps = d.dissipation;
      slab_spec = spec;
    }
  });

  double pen_e = 0.0, pen_eps = 0.0;
  std::vector<double> pen_spec;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    PencilSolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.03;
    cfg.pr = 2;
    cfg.pc = 2;
    PencilSolver solver(comm, cfg);
    solver.init_from_function(abc_flow);
    for (int s = 0; s < 3; ++s) solver.step(0.01);
    const double e = solver.kinetic_energy();
    const double eps = solver.dissipation_rate();
    auto spec = solver.spectrum();
    if (comm.rank() == 0) {
      pen_e = e;
      pen_eps = eps;
      pen_spec = spec;
    }
  });

  EXPECT_NEAR(pen_e, slab_e, 1e-11);
  EXPECT_NEAR(pen_eps, slab_eps, 1e-10);
  ASSERT_EQ(pen_spec.size(), slab_spec.size());
  for (std::size_t s = 0; s < slab_spec.size(); ++s) {
    EXPECT_NEAR(pen_spec[s], slab_spec[s], 1e-11) << "shell " << s;
  }
}

TEST(Invariance, PencilMatchesSlabRk4ForcedScalar) {
  // Full-featured equivalence through the shared SpectralNSCore: RK4 with
  // integrating factor, band forcing, and a mean-gradient passive scalar,
  // from the decomposition-invariant random initial conditions. The two
  // backends transform in different axis orders (x,z,y vs x,y,z), so
  // agreement is to rounding accumulation, not bitwise.
  constexpr int kSteps = 4;
  constexpr double kDt = 2e-3;
  const auto configure = [](auto& cfg) {
    cfg.n = 16;
    cfg.viscosity = 0.02;
    cfg.scheme = TimeScheme::RK4;
    cfg.forcing.enabled = true;
    cfg.forcing.power = 0.05;
    cfg.scalars.push_back(ScalarConfig{.schmidt = 0.7, .mean_gradient = 1.0});
  };

  Diagnostics slab_d;
  ScalarDiagnostics slab_sd;
  std::vector<double> slab_spec, slab_sspec;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    configure(cfg);
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(7, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 11, 3.0, 0.25);
    for (int s = 0; s < kSteps; ++s) solver.step(kDt);
    const auto d = solver.diagnostics();
    const auto sd = solver.scalar_diagnostics(0);
    auto spec = solver.spectrum();
    auto sspec = solver.scalar_spectrum(0);
    if (comm.rank() == 0) {
      slab_d = d;
      slab_sd = sd;
      slab_spec = spec;
      slab_sspec = sspec;
    }
  });

  Diagnostics pen_d;
  ScalarDiagnostics pen_sd;
  std::vector<double> pen_spec, pen_sspec;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    PencilSolverConfig cfg;
    configure(cfg);
    cfg.pr = 2;
    cfg.pc = 2;
    PencilSolver solver(comm, cfg);
    solver.init_isotropic(7, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 11, 3.0, 0.25);
    for (int s = 0; s < kSteps; ++s) solver.step(kDt);
    const auto d = solver.diagnostics();
    const auto sd = solver.scalar_diagnostics(0);
    auto spec = solver.spectrum();
    auto sspec = solver.scalar_spectrum(0);
    if (comm.rank() == 0) {
      pen_d = d;
      pen_sd = sd;
      pen_spec = spec;
      pen_sspec = sspec;
    }
  });

  EXPECT_NEAR(pen_d.energy, slab_d.energy, 1e-10);
  EXPECT_NEAR(pen_d.dissipation, slab_d.dissipation, 1e-9);
  EXPECT_NEAR(pen_d.u_max, slab_d.u_max, 1e-10);
  EXPECT_NEAR(pen_sd.variance, slab_sd.variance, 1e-10);
  EXPECT_NEAR(pen_sd.dissipation, slab_sd.dissipation, 1e-9);
  EXPECT_NEAR(pen_sd.flux_y, slab_sd.flux_y, 1e-10);
  ASSERT_EQ(pen_spec.size(), slab_spec.size());
  for (std::size_t s = 0; s < slab_spec.size(); ++s) {
    EXPECT_NEAR(pen_spec[s], slab_spec[s], 1e-10) << "shell " << s;
  }
  ASSERT_EQ(pen_sspec.size(), slab_sspec.size());
  for (std::size_t s = 0; s < slab_sspec.size(); ++s) {
    EXPECT_NEAR(pen_sspec[s], slab_sspec[s], 1e-10) << "scalar shell " << s;
  }
}

// --- physical behaviour of the turbulence ---

TEST(Physics, EnergyBalancedByDissipation) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.03;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(3, 3.0, 0.5);
    const double e0 = solver.diagnostics().energy;
    const double eps0 = solver.diagnostics().dissipation;
    const double dt = 0.005;
    solver.step(dt);
    const double e1 = solver.diagnostics().energy;
    const double eps1 = solver.diagnostics().dissipation;
    // dE/dt = -eps (the nonlinear term conserves energy; truncation only
    // removes what the spectrum barely reaches).
    const double lhs = (e1 - e0) / dt;
    const double rhs = -0.5 * (eps0 + eps1);
    EXPECT_NEAR(lhs, rhs, 0.02 * std::abs(rhs));
  });
}

TEST(Physics, ForcingSustainsEnergy) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.08;
    cfg.forcing.enabled = true;
    cfg.forcing.klo = 1;
    cfg.forcing.khi = 2;
    cfg.forcing.power = 0.2;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(5, 2.0, 0.3);

    SolverConfig unforced = cfg;
    unforced.forcing.enabled = false;
    SlabSolver free_decay(comm, unforced);
    free_decay.init_isotropic(5, 2.0, 0.3);

    for (int s = 0; s < 20; ++s) {
      solver.step(0.01);
      free_decay.step(0.01);
    }
    EXPECT_GT(solver.diagnostics().energy,
              free_decay.diagnostics().energy * 1.02);
  });
}

TEST(Physics, ForcingInjectsConfiguredPower) {
  // The band forcing is normalized to a fixed injection rate P, so
  // dE/dt = P - eps over a step.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.03;
    cfg.forcing.enabled = true;
    cfg.forcing.power = 0.4;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(12, 2.5, 0.5);
    const double e0 = solver.diagnostics().energy;
    const double eps0 = solver.diagnostics().dissipation;
    const double dt = 0.004;
    solver.step(dt);
    const double e1 = solver.diagnostics().energy;
    const double eps1 = solver.diagnostics().dissipation;
    const double lhs = (e1 - e0) / dt;
    const double rhs = cfg.forcing.power - 0.5 * (eps0 + eps1);
    EXPECT_NEAR(lhs, rhs, 0.05 * cfg.forcing.power);
  });
}

TEST(Physics, SkewnessTurnsNegativeAsCascadeDevelops) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.01;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(13, 4.0, 1.0);
    // A gaussian field has ~zero derivative skewness.
    const double s0 = solver.derivative_skewness();
    EXPECT_LT(std::abs(s0), 0.15);
    for (int s = 0; s < 15; ++s) solver.step(0.01);
    // Vortex stretching drives it toward the well-known ~-0.5.
    const double s1 = solver.derivative_skewness();
    EXPECT_LT(s1, -0.2);
    EXPECT_GT(s1, -1.2);
  });
}

TEST(Physics, PhaseShiftDealiasStaysCloseToTruncation) {
  auto run = [&](bool shift) {
    double e = 0.0;
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      SolverConfig cfg;
      cfg.n = 16;
      cfg.viscosity = 0.02;
      cfg.phase_shift_dealias = shift;
      SlabSolver solver(comm, cfg);
      solver.init_isotropic(9, 3.0, 0.5);
      for (int s = 0; s < 5; ++s) solver.step(0.01);
      const double energy = solver.diagnostics().energy;
      if (comm.rank() == 0) e = energy;
    });
    return e;
  };
  const double plain = run(false);
  const double shifted = run(true);
  EXPECT_NEAR(shifted, plain, 0.01 * plain);
  EXPECT_NE(shifted, plain);  // the shift does change the aliasing content
}

TEST(Diagnostics, DerivedScalesAreConsistent) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(21, 3.0, 0.5);
    const auto d = solver.diagnostics();
    EXPECT_GT(d.energy, 0.0);
    EXPECT_GT(d.dissipation, 0.0);
    EXPECT_GT(d.taylor_scale, 0.0);
    EXPECT_GT(d.reynolds_lambda, 0.0);
    EXPECT_GT(d.kolmogorov_eta, 0.0);
    // lambda = sqrt(15 nu u'^2 / eps) by definition.
    const double uprime2 = 2.0 * d.energy / 3.0;
    EXPECT_NEAR(d.taylor_scale,
                std::sqrt(15.0 * cfg.viscosity * uprime2 / d.dissipation),
                1e-12);
  });
}

TEST(Diagnostics, CflDtScalesInverselyWithVelocity) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.02;
    SlabSolver a(comm, cfg);
    a.init_isotropic(2, 3.0, 0.5);
    SlabSolver b(comm, cfg);
    b.init_isotropic(2, 3.0, 2.0);  // 4x the energy -> 2x the velocity
    const double dta = a.cfl_dt();
    const double dtb = b.cfl_dt();
    EXPECT_NEAR(dta / dtb, 2.0, 0.05);
  });
}

TEST(Spectrum, PeaksNearInjectedWavenumber) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(4, 4.0, 0.5);
    const auto spec = solver.spectrum();
    std::size_t peak = 0;
    for (std::size_t s = 1; s < spec.size(); ++s) {
      if (spec[s] > spec[peak]) peak = s;
    }
    EXPECT_GE(peak, 3u);
    EXPECT_LE(peak, 5u);
    // Total spectrum equals total energy.
    double total = 0.0;
    for (const double e : spec) total += e;
    EXPECT_NEAR(total, solver.diagnostics().energy, 1e-10);
  });
}

TEST(Statistics, SpectrumEnergyAndEnstrophyIdentities) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(6, 3.0, 0.5);
    const auto spec = solver.spectrum();
    const auto d = solver.diagnostics();
    EXPECT_NEAR(spectrum_energy(spec), d.energy, 1e-10);
    // eps = 2 nu Omega; the shell-binned enstrophy rounds |k| to integers,
    // so agreement is approximate.
    EXPECT_NEAR(2.0 * cfg.viscosity * enstrophy(spec), d.dissipation,
                0.1 * d.dissipation);
  });
}

TEST(Statistics, IntegralScaleIsPositiveAndBelowBox) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(2, 3.0, 0.5);
    const double L = integral_length_scale(solver.spectrum());
    EXPECT_GT(L, 0.0);
    EXPECT_LT(L, 2.0 * std::numbers::pi);
    // Energy peaked at k ~ 3 puts L near pi*3/(4*3) ~ O(1).
    EXPECT_GT(L, 0.2);
  });
}

TEST(Statistics, KmaxEta) {
  EXPECT_DOUBLE_EQ(kmax_eta(18432, 0.001), 6.144);
  EXPECT_DOUBLE_EQ(kmax_eta(0, 1.0), 0.0);
}

TEST(TransferSpectrum, NonlinearTermConservesEnergy) {
  // The projected, dealiased (Galerkin-truncated) nonlinear term moves
  // energy between shells without creating or destroying it.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.01;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(4, 3.0, 0.6);
    for (int s = 0; s < 3; ++s) solver.step(0.01);

    const auto transfer = solver.transfer_spectrum();
    double net = 0.0, gross = 0.0;
    for (const double t : transfer) {
      net += t;
      gross += std::abs(t);
    }
    EXPECT_GT(gross, 0.0);
    EXPECT_LT(std::abs(net), 1e-8 * gross);
  });
}

TEST(TransferSpectrum, CascadeMovesEnergyDownscale) {
  // After the cascade develops, the energetic shells lose energy
  // (T < 0 near the spectral peak) and the small scales gain it.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.01;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(10, 3.0, 1.0);
    for (int s = 0; s < 8; ++s) solver.step(0.01);

    const auto transfer = solver.transfer_spectrum();
    // Net transfer out of the large scales (k <= 3), into k > 5.
    double large = 0.0, small = 0.0;
    for (std::size_t k = 0; k < transfer.size(); ++k) {
      if (k <= 3) large += transfer[k];
      if (k > 5) small += transfer[k];
    }
    EXPECT_LT(large, 0.0);
    EXPECT_GT(small, 0.0);
  });
}

TEST(TransferSpectrum, ExcludesForcing) {
  // T(k) is the nonlinear transfer only; the same state with forcing
  // enabled must report the same transfer.
  auto run = [&](bool forced) {
    std::vector<double> t;
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      SolverConfig cfg;
      cfg.n = 16;
      cfg.viscosity = 0.02;
      cfg.forcing.enabled = forced;
      cfg.forcing.power = 1.0;
      SlabSolver solver(comm, cfg);
      solver.init_isotropic(5, 3.0, 0.5);
      auto transfer = solver.transfer_spectrum();
      if (comm.rank() == 0) t = transfer;
    });
    return t;
  };
  const auto plain = run(false);
  const auto forced = run(true);
  ASSERT_EQ(plain.size(), forced.size());
  for (std::size_t k = 0; k < plain.size(); ++k) {
    EXPECT_DOUBLE_EQ(plain[k], forced[k]) << "k=" << k;
  }
}

// --- vorticity, helicity, two-point statistics ---

TEST(Vorticity, CurlOfAbcFlowIsProportional) {
  // The ABC flow with a = b = c is a Beltrami field: omega = u (lambda=1),
  // making helicity maximal and the curl easy to verify mode by mode.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 16;
    cfg.viscosity = 0.01;
    SlabSolver solver(comm, cfg);
    solver.init_from_function([](double x, double y, double z) {
      return std::array<double, 3>{std::sin(z) + std::cos(y),
                                   std::sin(x) + std::cos(z),
                                   std::sin(y) + std::cos(x)};
    });
    const std::size_t m = solver.modes().local_modes();
    std::vector<Complex> wx(m), wy(m), wz(m);
    curl(solver.modes(), solver.uhat(0), solver.uhat(1), solver.uhat(2),
         wx.data(), wy.data(), wz.data());
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_LT(std::abs(wx[i] - solver.uhat(0)[i]), 1e-12);
      EXPECT_LT(std::abs(wy[i] - solver.uhat(1)[i]), 1e-12);
      EXPECT_LT(std::abs(wz[i] - solver.uhat(2)[i]), 1e-12);
    }
    // Beltrami: helicity = 2 * energy (omega = u).
    const double h = helicity(solver.modes(), comm, solver.uhat(0),
                              solver.uhat(1), solver.uhat(2));
    const double e = solver.diagnostics().energy;
    EXPECT_NEAR(h, 2.0 * e, 1e-10);
  });
}

TEST(Vorticity, EnstrophyTiesToDissipation) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.03;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(4, 3.0, 0.5);
    const double omega = enstrophy_exact(solver.modes(), comm,
                                         solver.uhat(0), solver.uhat(1),
                                         solver.uhat(2));
    EXPECT_NEAR(2.0 * cfg.viscosity * omega,
                solver.diagnostics().dissipation, 1e-10);
  });
}

TEST(Vorticity, RandomFieldHelicityIsSmallAndSpectrumSums) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(8, 3.0, 0.5);
    const double h = helicity(solver.modes(), comm, solver.uhat(0),
                              solver.uhat(1), solver.uhat(2));
    const auto hs = helicity_spectrum(solver.modes(), comm, solver.uhat(0),
                                      solver.uhat(1), solver.uhat(2));
    double total = 0.0;
    for (const double v : hs) total += v;
    EXPECT_NEAR(total, h, 1e-10);
    // Random phases: |H| well below the maximal 2E * k bound.
    EXPECT_LT(std::abs(h), 2.0 * solver.diagnostics().energy * 8.0);
  });
}

TEST(TwoPoint, CorrelationIsOneAtZeroAndDecays) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(5, 4.0, 0.5);
    const auto spec = solver.spectrum();
    const std::vector<double> r{0.0, 0.2, 0.5, 1.0, 2.0};
    const auto f = longitudinal_correlation(spec, r);
    EXPECT_NEAR(f[0], 1.0, 1e-10);
    EXPECT_LT(f[1], 1.0);
    EXPECT_GT(f[1], f[2]);
    EXPECT_GT(f[2], f[4]);
  });
}

TEST(TwoPoint, StructureFunctionComplementsCorrelation) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SolverConfig cfg;
    cfg.n = 24;
    cfg.viscosity = 0.02;
    SlabSolver solver(comm, cfg);
    solver.init_isotropic(6, 3.0, 0.6);
    const auto spec = solver.spectrum();
    const std::vector<double> r{0.0, 0.3, 1.0};
    const auto f = longitudinal_correlation(spec, r);
    const auto s2 = structure_function_2(spec, r);
    const double e = solver.diagnostics().energy;
    const double uprime2 = 2.0 * e / 3.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_NEAR(s2[i], 2.0 * uprime2 * (1.0 - f[i]), 1e-12);
    }
    EXPECT_NEAR(s2[0], 0.0, 1e-10);
    EXPECT_GT(s2[2], s2[1]);
  });
}

// --- spectral regridding ---

TEST(Regrid, UpsamplingPreservesEverySharedMode) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig small;
    small.n = 16;
    small.viscosity = 0.02;
    SolverConfig big = small;
    big.n = 32;

    SlabSolver a(comm, small);
    a.init_isotropic(3, 3.0, 0.5);
    for (int s = 0; s < 2; ++s) a.step(0.01);

    SlabSolver b(comm, big);
    spectral_regrid(a, b);

    EXPECT_DOUBLE_EQ(b.time(), a.time());
    EXPECT_EQ(b.step_count(), a.step_count());

    const auto ea = a.diagnostics();
    const auto eb = b.diagnostics();
    EXPECT_NEAR(eb.energy, ea.energy, 1e-12);
    EXPECT_NEAR(eb.dissipation, ea.dissipation, 1e-10);
    EXPECT_LT(eb.max_divergence, 1e-12);

    const auto sa = a.spectrum();
    const auto sb = b.spectrum();
    // Shells fully representable on the small grid match exactly. (The
    // small grid's corner modes reach |k| ~ 5*sqrt(3) ~ 8.7, which its own
    // spectrum array truncates at shell N/2 = 8 but the fine grid resolves
    // into shell 9, so only shells 0..7 are comparable arrays.)
    for (std::size_t k = 0; k + 1 < sa.size(); ++k) {
      EXPECT_NEAR(sb[k], sa[k], 1e-12) << "shell " << k;
    }
    // Nothing can appear beyond the small grid's corner radius.
    for (std::size_t k = 10; k < sb.size(); ++k) {
      EXPECT_EQ(sb[k], 0.0) << "new shell " << k;
    }
  });
}

TEST(Regrid, TaylorGreenStaysExactOnTheFinerGrid) {
  // The TG vortex is band-limited, so regridding is lossless and the finer
  // grid must continue the analytic decay.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig small;
    small.n = 16;
    small.viscosity = 0.05;
    SolverConfig big = small;
    big.n = 32;

    SlabSolver a(comm, small);
    a.init_taylor_green();
    for (int s = 0; s < 5; ++s) a.step(0.02);

    SlabSolver b(comm, big);
    spectral_regrid(a, b);
    for (int s = 0; s < 5; ++s) b.step(0.02);

    const double want = 0.25 * std::exp(-4.0 * 0.05 * b.time());
    EXPECT_NEAR(b.diagnostics().energy, want, 1e-8);
  });
}

TEST(Regrid, DownsamplingTruncatesHighShells) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig big;
    big.n = 32;
    big.viscosity = 0.02;
    SolverConfig small = big;
    small.n = 16;

    SlabSolver a(comm, big);
    a.init_isotropic(9, 5.0, 0.5);  // energy up to shell 10

    SlabSolver b(comm, small);
    spectral_regrid(a, b);

    const auto sa = a.spectrum();
    const auto sb = b.spectrum();
    // Shared shells below the small grid's dealiasing cutoff survive.
    const std::size_t cutoff = (16 - 1) / 3;
    for (std::size_t k = 0; k <= cutoff; ++k) {
      EXPECT_NEAR(sb[k], sa[k], 1e-12) << "shell " << k;
    }
    // The destination is properly dealiased and integrable.
    EXPECT_LT(b.diagnostics().max_divergence, 1e-12);
    b.step(0.01);
  });
}

TEST(Regrid, CarriesScalars) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SolverConfig small;
    small.n = 16;
    small.viscosity = 0.02;
    small.scalars = {{.schmidt = 1.0}};
    SolverConfig big = small;
    big.n = 24;

    SlabSolver a(comm, small);
    a.init_isotropic(1, 3.0, 0.5);
    a.init_scalar_isotropic(0, 2, 3.0, 0.3);

    SlabSolver b(comm, big);
    spectral_regrid(a, b);
    EXPECT_NEAR(b.scalar_diagnostics(0).variance,
                a.scalar_diagnostics(0).variance, 1e-12);
  });
}

TEST(Regrid, RejectsMismatchedScalars) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SolverConfig sa;
    sa.n = 16;
    SolverConfig sb;
    sb.n = 32;
    sb.scalars = {{.schmidt = 1.0}};
    SlabSolver a(comm, sa);
    SlabSolver b(comm, sb);
    EXPECT_THROW(spectral_regrid(a, b), util::Error);
  });
}

}  // namespace
}  // namespace psdns::dns
