#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comm/communicator.hpp"

namespace psdns::comm {
namespace {

TEST(RunRanks, AllRanksExecuteWithDistinctIds) {
  std::atomic<int> mask{0};
  run_ranks(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    mask.fetch_or(1 << comm.rank());
  });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(RunRanks, SingleRankWorks) {
  run_ranks(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    comm.barrier();
    EXPECT_EQ(comm.allreduce_sum(5), 5);
  });
}

TEST(RunRanks, PropagatesException) {
  EXPECT_THROW(
      run_ranks(2,
                [](Communicator& comm) {
                  if (comm.rank() == 1) {
                    PSDNS_REQUIRE(false, "rank 1 exploded");
                  }
                }),
      util::Error);
}

TEST(Barrier, SynchronizesPhases) {
  // Each rank increments a counter before the barrier; after the barrier
  // every rank must observe the full count.
  std::atomic<int> before{0};
  run_ranks(4, [&](Communicator& comm) {
    before.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(before.load(), 4);
  });
}

TEST(Alltoall, ExchangesBlocksByRank) {
  const int P = 4;
  const std::size_t count = 3;
  run_ranks(P, [&](Communicator& comm) {
    std::vector<int> send(P * count), recv(P * count, -1);
    // Block for rank r holds value 100*me + r repeated.
    for (int r = 0; r < P; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        send[r * count + i] = 100 * comm.rank() + r;
      }
    }
    comm.alltoall(send.data(), recv.data(), count);
    for (int r = 0; r < P; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(recv[r * count + i], 100 * r + comm.rank());
      }
    }
  });
}

TEST(Alltoall, SelfBlockDelivered) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<int> send{10 + comm.rank(), 20 + comm.rank(),
                          30 + comm.rank()};
    std::vector<int> recv(3, -1);
    comm.alltoall(send.data(), recv.data(), 1);
    EXPECT_EQ(recv[comm.rank()], (comm.rank() + 1) * 10 + comm.rank());
  });
}

TEST(Alltoall, RepeatedCallsDoNotInterfere) {
  run_ranks(4, [](Communicator& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      std::vector<int> send(4), recv(4);
      for (int r = 0; r < 4; ++r) send[r] = 1000 * iter + comm.rank();
      comm.alltoall(send.data(), recv.data(), 1);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(recv[r], 1000 * iter + r);
    }
  });
}

TEST(Ialltoall, CompletesAtWait) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<int> send(4), recv(4, -1);
    for (int r = 0; r < 4; ++r) send[r] = comm.rank() * 10 + r;
    Request req = comm.ialltoall(send.data(), recv.data(), 1);
    EXPECT_TRUE(req.valid());
    req.wait();
    EXPECT_FALSE(req.valid());
    for (int r = 0; r < 4; ++r) EXPECT_EQ(recv[r], r * 10 + comm.rank());
  });
}

TEST(Ialltoall, WaitOnConsumedRequestThrows) {
  run_ranks(2, [](Communicator& comm) {
    std::vector<int> send(2), recv(2);
    Request req = comm.ialltoall(send.data(), recv.data(), 1);
    req.wait();
    EXPECT_THROW(req.wait(), util::Error);
  });
}

TEST(Alltoallv, VariableBlockSizes) {
  // Rank r sends r+1 elements to every destination.
  const int P = 3;
  run_ranks(P, [&](Communicator& comm) {
    const std::size_t mine = static_cast<std::size_t>(comm.rank()) + 1;
    std::vector<double> send(mine * P);
    std::vector<std::size_t> scounts(P, mine), sdispls(P);
    for (int r = 0; r < P; ++r) {
      sdispls[r] = static_cast<std::size_t>(r) * mine;
      for (std::size_t i = 0; i < mine; ++i) {
        send[sdispls[r] + i] = comm.rank() * 100 + r;
      }
    }
    std::vector<std::size_t> rcounts(P), rdispls(P);
    std::size_t total = 0;
    for (int r = 0; r < P; ++r) {
      rcounts[r] = static_cast<std::size_t>(r) + 1;
      rdispls[r] = total;
      total += rcounts[r];
    }
    std::vector<double> recv(total, -1.0);
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (int r = 0; r < P; ++r) {
      for (std::size_t i = 0; i < rcounts[r]; ++i) {
        EXPECT_DOUBLE_EQ(recv[rdispls[r] + i], r * 100 + comm.rank());
      }
    }
  });
}

TEST(Allreduce, SumAcrossRanks) {
  run_ranks(5, [](Communicator& comm) {
    EXPECT_EQ(comm.allreduce_sum(comm.rank() + 1), 15);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(0.5), 2.5);
  });
}

TEST(Allreduce, VectorSumInPlace) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<double> v{1.0 * comm.rank(), 10.0};
    comm.allreduce_sum(v.data(), v.data(), 2);
    EXPECT_DOUBLE_EQ(v[0], 3.0);  // 0+1+2
    EXPECT_DOUBLE_EQ(v[1], 30.0);
  });
}

TEST(Allreduce, Max) {
  run_ranks(4, [](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     3.0);
  });
}

TEST(Broadcast, RootValueReachesAll) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<int> data(3, comm.rank() == 2 ? 7 : -1);
    comm.broadcast(data.data(), 3, 2);
    for (const int v : data) EXPECT_EQ(v, 7);
  });
}

TEST(Gather, RootCollectsRankOrderedBlocks) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<int> send{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> recv(comm.rank() == 1 ? 8 : 0);
    comm.gather(send.data(), recv.data(), 2, /*root=*/1);
    if (comm.rank() == 1) {
      EXPECT_EQ(recv, (std::vector<int>{0, 1, 10, 11, 20, 21, 30, 31}));
    }
  });
}

TEST(Scatter, BlocksReachTheRightRanks) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<double> send;
    if (comm.rank() == 0) send = {0.5, 1.5, 2.5};
    std::vector<double> recv(1, -1.0);
    comm.scatter(send.data(), recv.data(), 1, /*root=*/0);
    EXPECT_DOUBLE_EQ(recv[0], comm.rank() + 0.5);
  });
}

TEST(GatherScatter, RoundTrip) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<int> mine{comm.rank(), comm.rank() * comm.rank()};
    std::vector<int> all(comm.rank() == 0 ? 8 : 0);
    comm.gather(mine.data(), all.data(), 2, 0);
    std::vector<int> back(2, -1);
    comm.scatter(all.data(), back.data(), 2, 0);
    EXPECT_EQ(back, mine);
  });
}

TEST(Split, RowColumnGrid) {
  // 6 ranks as a 2x3 grid: row communicators of size 3, column of size 2.
  run_ranks(6, [](Communicator& comm) {
    const int row = comm.rank() / 3;
    const int col = comm.rank() % 3;
    Communicator row_comm = comm.split(row, col);
    Communicator col_comm = comm.split(col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(col_comm.rank(), row);

    // Collectives on the subcommunicators work independently.
    EXPECT_EQ(row_comm.allreduce_sum(1), 3);
    EXPECT_EQ(col_comm.allreduce_sum(comm.rank()), col + (col + 3));
  });
}

TEST(Split, AlltoallWithinSubcommunicator) {
  run_ranks(4, [](Communicator& comm) {
    Communicator half = comm.split(comm.rank() / 2, comm.rank());
    std::vector<int> send{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> recv(2, -1);
    half.alltoall(send.data(), recv.data(), 1);
    const int partner0 = (comm.rank() / 2) * 2;
    EXPECT_EQ(recv[0], partner0 * 10 + half.rank());
    EXPECT_EQ(recv[1], (partner0 + 1) * 10 + half.rank());
  });
}

TEST(Split, KeyControlsOrdering) {
  // Reverse ordering via descending keys.
  run_ranks(3, [](Communicator& comm) {
    Communicator rev = comm.split(0, -comm.rank());
    EXPECT_EQ(rev.rank(), 2 - comm.rank());
  });
}

}  // namespace
}  // namespace psdns::comm
