#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resilience/fault.hpp"
#include "svc/audit.hpp"
#include "svc/client.hpp"
#include "svc/job.hpp"
#include "svc/result_store.hpp"
#include "svc/runner.hpp"
#include "svc/scheduler.hpp"
#include "svc/service.hpp"
#include "util/check.hpp"
#include "util/config.hpp"
#include "util/stopwatch.hpp"

namespace psdns::svc {
namespace {

namespace fs = std::filesystem;

std::string tmp_dir(const std::string& name) {
  const std::string path = (fs::temp_directory_path() / name).string();
  fs::remove_all(path);
  return path;
}

JobRequest small_request(std::uint64_t seed = 1, const std::string& tenant =
                                                     "default") {
  JobRequest req;
  req.tenant = tenant;
  req.n = 16;
  req.ranks = 1;
  req.steps = 2;
  req.seed = seed;
  return req;
}

// --- job model -----------------------------------------------------------

TEST(JobRequest, HashIsContentAddressedAndExcludesTenant) {
  JobRequest a = small_request(1, "alice");
  JobRequest b = small_request(1, "bob");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hash().size(), 16u);
  for (const char c : a.hash()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }

  JobRequest c = small_request(2, "alice");
  EXPECT_NE(a.hash(), c.hash());
  JobRequest d = small_request(1, "alice");
  d.decomposition = Decomposition::Pencil;
  EXPECT_NE(a.hash(), d.hash());
  JobRequest e = small_request(1, "alice");
  e.dealias = DealiasMode::PhaseShift;
  EXPECT_NE(a.hash(), e.hash());
}

TEST(JobRequest, JsonRoundTrip) {
  JobRequest a = small_request(42, "alice");
  a.scheme = "rk4";
  a.decomposition = Decomposition::Pencil;
  a.dealias = DealiasMode::PhaseShift;
  a.forcing = true;
  a.forcing_power = 0.25;
  a.scalars = 2;
  const JobRequest b = JobRequest::from_json(a.to_json());
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.tenant, b.tenant);
}

TEST(JobRequest, LegacyNavierStokesHashesAreStable) {
  // Hashes pinned from the release predating pluggable equation systems:
  // a navier_stokes request's canonical form must never mention the
  // system fields, or every cached result minted before the split would
  // be orphaned.
  const JobRequest def;
  EXPECT_EQ(def.hash(), "9c5acb91c2b2d0ad");

  JobRequest rich;
  rich.tenant = "acme";
  rich.n = 64;
  rich.decomposition = Decomposition::Pencil;
  rich.ranks = 4;
  rich.scheme = "rk4";
  rich.viscosity = 0.008;
  rich.seed = 42;
  rich.steps = 12;
  rich.dealias = DealiasMode::PhaseShift;
  rich.forcing = true;
  rich.forcing_power = 0.25;
  rich.scalars = 2;
  rich.cfl = 0.4;
  rich.max_dt = 0.005;
  EXPECT_EQ(rich.hash(), "661f5f787e00feae");

  // Parameters no system reads never fragment the cache...
  JobRequest irrelevant;
  irrelevant.rotation_omega = 7.0;
  irrelevant.brunt_vaisala = 3.0;
  irrelevant.resistivity = 0.5;
  EXPECT_EQ(irrelevant.hash(), def.hash());

  // ...but the selected system and its own parameter are content.
  JobRequest rot;
  rot.system = "rotating";
  rot.rotation_omega = 2.0;
  EXPECT_NE(rot.hash(), def.hash());
  JobRequest faster = rot;
  faster.rotation_omega = 3.0;
  EXPECT_NE(faster.hash(), rot.hash());
  JobRequest same = rot;
  same.brunt_vaisala = 99.0;  // rotating does not read N
  EXPECT_EQ(same.hash(), rot.hash());
}

TEST(JobRequest, SystemFieldsRoundTripAndValidate) {
  JobRequest a = small_request();
  a.system = "mhd";
  a.resistivity = 0.02;
  const JobRequest b = JobRequest::from_json(a.to_json());
  EXPECT_EQ(b.system, "mhd");
  EXPECT_EQ(a.canonical(), b.canonical());

  JobRequest bad = small_request();
  bad.system = "navier-stokes";  // unknown name
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.system = "rotating";
  bad.rotation_omega = 0.0;
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.system = "boussinesq";
  bad.brunt_vaisala = -1.0;
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.system = "mhd";
  bad.scalars = 1;  // MHD's extra fields are the induction components
  EXPECT_THROW(bad.validate(), util::Error);
  bad.scalars = 0;
  bad.resistivity = -0.1;
  EXPECT_THROW(bad.validate(), util::Error);
}

TEST(JobRequest, FromJsonRejectsUnknownAndMalformed) {
  EXPECT_THROW(JobRequest::from_json("{\"grid\":32}"), util::Error);
  EXPECT_THROW(JobRequest::from_json("{\"n\":\"big\"}"), util::Error);
  EXPECT_THROW(JobRequest::from_json("not json"), util::Error);
  EXPECT_THROW(JobRequest::from_json("[1,2]"), util::Error);
}

TEST(JobRequest, ValidateRejectsUnserviceableValues) {
  EXPECT_NO_THROW(small_request().validate());

  JobRequest bad = small_request();
  bad.ranks = 3;  // does not divide n = 16
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.scheme = "euler";
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.steps = 0;
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.viscosity = -1.0;
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.tenant = "no spaces";
  EXPECT_THROW(bad.validate(), util::Error);

  bad = small_request();
  bad.n = 4;  // below the serviceable floor
  EXPECT_THROW(bad.validate(), util::Error);
}

TEST(JobRequest, FromConfigParsesAndRejectsUnknownKeys) {
  const auto file = util::Config::from_string(R"(
tenant = alice
n = 32
decomposition = pencil
ranks = 4
scheme = rk4
viscosity = 0.005
seed = 9
steps = 12
dealias = phase_shift
forcing = true
forcing_power = 0.2
scalars = 1
)");
  const JobRequest req = JobRequest::from_config(file);
  EXPECT_EQ(req.tenant, "alice");
  EXPECT_EQ(req.n, 32u);
  EXPECT_EQ(req.decomposition, Decomposition::Pencil);
  EXPECT_EQ(req.ranks, 4);
  EXPECT_EQ(req.scheme, "rk4");
  EXPECT_EQ(req.seed, 9u);
  EXPECT_EQ(req.steps, 12);
  EXPECT_EQ(req.dealias, DealiasMode::PhaseShift);
  EXPECT_TRUE(req.forcing);
  EXPECT_EQ(req.scalars, 1);
  EXPECT_NO_THROW(req.validate());

  EXPECT_THROW(
      JobRequest::from_config(util::Config::from_string("grid = 32\n")),
      util::Error);
}

// --- service config (new util::config keys) ------------------------------

TEST(ServiceConfig, ParsesServiceKeysAndTenantWeights) {
  const auto file = util::Config::from_string(R"(
service.port = 9999
service.max_concurrent = 3
service.queue_capacity = 8
service.cache_dir = /tmp/psdns_cache
service.cache_keep = 5
service.workdir = /tmp/psdns_work
service.tenant.alice.weight = 2.0
service.tenant.bob.weight = 0.5
)");
  const ServiceConfig cfg = ServiceConfig::from(file);
  EXPECT_EQ(cfg.port, 9999);
  EXPECT_EQ(cfg.max_concurrent, 3);
  EXPECT_EQ(cfg.queue_capacity, 8);
  EXPECT_EQ(cfg.cache_dir, "/tmp/psdns_cache");
  EXPECT_EQ(cfg.cache_keep, 5);
  EXPECT_EQ(cfg.workdir, "/tmp/psdns_work");
  ASSERT_EQ(cfg.tenant_weights.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.tenant_weights.at("alice"), 2.0);
  EXPECT_DOUBLE_EQ(cfg.tenant_weights.at("bob"), 0.5);
}

TEST(ServiceConfig, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(
      ServiceConfig::from(util::Config::from_string("service.prot = 1\n")),
      util::Error);
  EXPECT_THROW(ServiceConfig::from(
                   util::Config::from_string("service.port = 123456\n")),
               util::Error);
  EXPECT_THROW(ServiceConfig::from(util::Config::from_string(
                   "service.max_concurrent = 0\n")),
               util::Error);
  EXPECT_THROW(ServiceConfig::from(
                   util::Config::from_string("service.cache_keep = 0\n")),
               util::Error);
  EXPECT_THROW(ServiceConfig::from(util::Config::from_string(
                   "service.tenant.alice.weight = -1\n")),
               util::Error);
  EXPECT_THROW(ServiceConfig::from(util::Config::from_string(
                   "service.tenant..weight = 1\n")),
               util::Error);
  EXPECT_THROW(ServiceConfig::from(
                   util::Config::from_string("service.port = nine\n")),
               util::Error);
}

TEST(ServiceConfig, EnvironmentOverrides) {
  ::setenv("PSDNS_SVC_PORT", "7777", 1);
  ::setenv("PSDNS_SVC_MAX_CONCURRENT", "2", 1);
  ::setenv("PSDNS_SVC_CACHE_DIR", "/tmp/env_cache", 1);
  const ServiceConfig cfg = ServiceConfig::with_env(ServiceConfig{});
  ::unsetenv("PSDNS_SVC_PORT");
  ::unsetenv("PSDNS_SVC_MAX_CONCURRENT");
  ::unsetenv("PSDNS_SVC_CACHE_DIR");
  EXPECT_EQ(cfg.port, 7777);
  EXPECT_EQ(cfg.max_concurrent, 2);
  EXPECT_EQ(cfg.cache_dir, "/tmp/env_cache");

  ::setenv("PSDNS_SVC_CACHE_KEEP", "0", 1);
  EXPECT_THROW(ServiceConfig::with_env(ServiceConfig{}), util::Error);
  ::unsetenv("PSDNS_SVC_CACHE_KEEP");
}

TEST(ServiceConfig, ParsesTraceAndAuditKeys) {
  const auto file = util::Config::from_string(R"(
service.trace = true
service.audit_file = /tmp/psdns_audit.jsonl
)");
  const ServiceConfig cfg = ServiceConfig::from(file);
  EXPECT_TRUE(cfg.trace);
  EXPECT_EQ(cfg.audit_file, "/tmp/psdns_audit.jsonl");
  EXPECT_FALSE(ServiceConfig{}.trace);  // off unless asked for

  ::setenv("PSDNS_SVC_TRACE", "on", 1);
  ::setenv("PSDNS_SVC_AUDIT_FILE", "/tmp/psdns_env_audit.jsonl", 1);
  const ServiceConfig env_cfg = ServiceConfig::with_env(ServiceConfig{});
  ::unsetenv("PSDNS_SVC_TRACE");
  ::unsetenv("PSDNS_SVC_AUDIT_FILE");
  EXPECT_TRUE(env_cfg.trace);
  EXPECT_EQ(env_cfg.audit_file, "/tmp/psdns_env_audit.jsonl");

  // Unknown boolean spellings are errors, not silent defaults.
  ::setenv("PSDNS_SVC_TRACE", "maybe", 1);
  EXPECT_THROW(ServiceConfig::with_env(ServiceConfig{}), util::Error);
  ::unsetenv("PSDNS_SVC_TRACE");
}

// --- result store --------------------------------------------------------

TEST(ResultStore, RoundTripPersistenceAndCounters) {
  const std::string dir = tmp_dir("psdns_store_roundtrip");
  const std::string hash = small_request().hash();
  {
    ResultStore store({dir, 4});
    EXPECT_FALSE(store.lookup(hash).has_value());
    EXPECT_EQ(store.misses(), 1);
    store.insert(hash, "{\"x\":1}");
    const auto back = store.lookup(hash);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "{\"x\":1}");
    EXPECT_EQ(store.hits(), 1);
  }
  // A fresh instance over the same directory serves the persisted entry.
  ResultStore reopened({dir, 4});
  EXPECT_EQ(reopened.size(), 1u);
  const auto back = reopened.lookup(hash);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "{\"x\":1}");
  fs::remove_all(dir);
}

TEST(ResultStore, CorruptEntryIsDroppedAsMiss) {
  const std::string dir = tmp_dir("psdns_store_corrupt");
  ResultStore store({dir, 4});
  const std::string hash = small_request().hash();
  store.insert(hash, "the result payload, CRC protected");
  // Flip one payload byte behind the store's back.
  {
    std::fstream f(store.path_for(hash),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    f.put('X');
  }
  EXPECT_FALSE(store.lookup(hash).has_value());
  EXPECT_FALSE(fs::exists(store.path_for(hash)));
  EXPECT_EQ(store.misses(), 1);
  EXPECT_EQ(obs::registry().counter("svc.cache.corrupt") > 0, true);
  fs::remove_all(dir);
}

TEST(ResultStore, KeepKEvictsLeastRecentlyUsed) {
  const std::string dir = tmp_dir("psdns_store_evict");
  ResultStore store({dir, 2});
  const std::string h1 = small_request(1).hash();
  const std::string h2 = small_request(2).hash();
  const std::string h3 = small_request(3).hash();
  store.insert(h1, "one");
  store.insert(h2, "two");
  EXPECT_TRUE(store.lookup(h1).has_value());  // refresh h1; h2 is now LRU
  store.insert(h3, "three");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_TRUE(store.contains(h1));
  EXPECT_FALSE(store.contains(h2));
  EXPECT_TRUE(store.contains(h3));
  EXPECT_FALSE(fs::exists(store.path_for(h2)));
  fs::remove_all(dir);
}

// --- scheduler -----------------------------------------------------------

ServiceConfig test_config(const std::string& tag, int max_concurrent = 1) {
  ServiceConfig cfg;
  cfg.max_concurrent = max_concurrent;
  cfg.cache_dir = tmp_dir("psdns_svc_cache_" + tag);
  cfg.workdir = tmp_dir("psdns_svc_work_" + tag);
  return cfg;
}

TEST(Scheduler, FairShareDispatchOrderIsDeterministic) {
  ServiceConfig cfg = test_config("fairshare");
  cfg.tenant_weights["alice"] = 1.0;
  cfg.tenant_weights["bob"] = 2.0;
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  Scheduler sched(cfg, store, /*autostart=*/false);

  // Distinct seeds -> no cache hits; all jobs queued before any dispatch.
  std::vector<std::int64_t> alice_ids, bob_ids;
  for (int j = 0; j < 4; ++j) {
    alice_ids.push_back(
        sched.submit(small_request(100 + static_cast<std::uint64_t>(j),
                                   "alice")).id);
    bob_ids.push_back(
        sched.submit(small_request(200 + static_cast<std::uint64_t>(j),
                                   "bob")).id);
  }
  EXPECT_EQ(sched.queue_depth(), 8u);
  sched.start();
  sched.drain();

  // Stride order with weights {alice:1, bob:2} and the name tie-break:
  // A B B A B B A A (bob is dispatched twice as often under contention).
  std::map<int, char> order;
  for (const std::int64_t id : alice_ids) {
    order[sched.job(id)->dispatch_index] = 'A';
  }
  for (const std::int64_t id : bob_ids) {
    order[sched.job(id)->dispatch_index] = 'B';
  }
  std::string sequence;
  for (const auto& [index, who] : order) {
    EXPECT_GE(index, 0);
    sequence += who;
  }
  EXPECT_EQ(sequence, "ABBABBAA");
  for (const std::int64_t id : alice_ids) {
    EXPECT_EQ(sched.job(id)->state, JobState::Done);
  }

  // Fairness SLO gauges on the same pinned interleaving: the first six
  // dispatches are contended (both tenants queued at pick time) and split
  // alice 2 : bob 4, so the achieved contended share equals the 1:2
  // weight target exactly. The trailing two uncontended A dispatches must
  // not count against alice.
  auto& reg = obs::registry();
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.alice.target_share"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.bob.target_share"), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.alice.achieved_share"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.bob.achieved_share"), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.alice.completed"), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("svc.tenant.bob.weight"), 2.0);

  // /queue reports the same shares (the psdns_top --service view).
  const obs::JsonValue qdoc = obs::json_parse(sched.queue_json());
  const obs::JsonValue& alice = qdoc.at("tenants").at("alice");
  const obs::JsonValue& bob = qdoc.at("tenants").at("bob");
  EXPECT_DOUBLE_EQ(alice.at("target_share").number, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(alice.at("achieved_share").number, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(bob.at("achieved_share").number, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(alice.at("dispatched").number, 4.0);
  EXPECT_DOUBLE_EQ(bob.at("dispatched").number, 4.0);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Scheduler, IdenticalResubmissionIsACacheHitWithIdenticalBytes) {
  ServiceConfig cfg = test_config("cachehit");
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  Scheduler sched(cfg, store);

  const auto first = sched.submit(small_request(7, "alice"));
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.cached);
  sched.drain();  // run it
  const auto cold = sched.result(first.id);
  ASSERT_TRUE(cold.has_value());

  // Note drain() stopped admission; a fresh scheduler over the same store
  // is the "service restarted" case - the cache must still answer.
  Scheduler again(cfg, store);
  const auto second = again.submit(small_request(7, "bob"));
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(again.job(second.id)->state, JobState::Done);
  const auto hit = again.result(second.id);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*cold, *hit);  // bitwise-identical document, no re-run
  EXPECT_EQ(store.hits(), 1);

  // /queue keeps finished jobs visible with the request's equation system
  // and grid size plus the cached flag - the psdns_top --service jobs
  // table reads exactly these fields.
  const obs::JsonValue qdoc = obs::json_parse(again.queue_json());
  const auto& jobs = qdoc.at("jobs").array;
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].at("state").string, "done");
  EXPECT_TRUE(jobs[0].at("cached").boolean);
  EXPECT_EQ(jobs[0].at("request").at("system").string, "navier_stokes");
  EXPECT_EQ(jobs[0].at("request").at("n").number, small_request(7).n);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Scheduler, CacheHitsDoNotDistortLatencySlos) {
  ServiceConfig cfg = test_config("sloiso");
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  {
    Scheduler cold(cfg, store);
    ASSERT_TRUE(cold.submit(small_request(31, "victim")).accepted);
    cold.drain();
  }
  const auto before =
      obs::registry().histogram("svc.tenant.victim.queue_wait_seconds");
  EXPECT_GE(before.count, 1);

  // A hit-heavy tenant replays the same content over and over. Hits never
  // reach the dispatch path, so they must not add samples to any latency
  // histogram - neither its own nor the victim's.
  Scheduler hot(cfg, store);
  for (int i = 0; i < 5; ++i) {
    const auto hit = hot.submit(small_request(31, "hog"));
    ASSERT_TRUE(hit.accepted);
    EXPECT_TRUE(hit.cached);
  }
  const auto after =
      obs::registry().histogram("svc.tenant.victim.queue_wait_seconds");
  EXPECT_EQ(after.count, before.count);
  EXPECT_DOUBLE_EQ(after.sum, before.sum);
  EXPECT_EQ(
      obs::registry().histogram("svc.tenant.hog.queue_wait_seconds").count,
      0);
  EXPECT_EQ(obs::registry().histogram("svc.tenant.hog.e2e_seconds").count, 0);
  // The hits land in the hit-rate gauge instead.
  EXPECT_DOUBLE_EQ(obs::registry().gauge("svc.tenant.hog.cache_hit_rate"),
                   1.0);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

// --- audit log -----------------------------------------------------------

TEST(Audit, EventJsonRoundTripsAndReplayDropsTime) {
  AuditEvent e;
  e.seq = 3;
  e.t_s = 1.5;
  e.event = "completed";
  e.job = 7;
  e.trace = "tdeadbeefdeadbeef";
  e.tenant = "alice";
  e.hash = "0123456789abcdef";
  e.cached = true;
  e.detail = "with \"quotes\"";
  const AuditEvent back = AuditEvent::parse(e.to_json());
  EXPECT_EQ(back.to_json(), e.to_json());
  EXPECT_EQ(back.seq, 3);
  EXPECT_EQ(back.event, "completed");
  EXPECT_EQ(back.job, 7);
  EXPECT_EQ(back.trace, "tdeadbeefdeadbeef");
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.detail, "with \"quotes\"");
  // The replay form is the event minus its wall-clock stamp.
  EXPECT_EQ(e.replay_json().find("t_s"), std::string::npos);
  EXPECT_NE(e.replay_json().find("\"seq\":3"), std::string::npos);
  EXPECT_THROW(AuditEvent::parse("not json"), util::Error);
}

/// Submits seed `s` for "alice", waits for the run, then resubmits the
/// identical content as "bob" (a cache hit), against a scheduler logging
/// to `audit_path`. The fixed sequence the lifecycle tests key on.
void run_audited_workload(ServiceConfig cfg, const std::string& audit_path,
                          std::uint64_t s) {
  cfg.audit_file = audit_path;
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  Scheduler sched(cfg, store);
  const auto first = sched.submit(small_request(s, "alice"));
  ASSERT_TRUE(first.accepted);
  while (sched.job(first.id)->state != JobState::Done) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto second = sched.submit(small_request(s, "bob"));
  ASSERT_TRUE(second.accepted);
  EXPECT_TRUE(second.cached);
  sched.drain();
}

TEST(Audit, SchedulerLogsLifecycleEventsInOrder) {
  ServiceConfig cfg = test_config("audit");
  const std::string path =
      (fs::temp_directory_path() / "psdns_audit_events.jsonl").string();
  run_audited_workload(cfg, path, 41);

  const auto events = read_audit_jsonl(path);
  std::vector<std::string> names;
  for (const auto& e : events) names.push_back(e.event);
  EXPECT_EQ(names,
            (std::vector<std::string>{"submitted", "admitted", "scheduled",
                                      "started", "completed", "submitted",
                                      "cache_hit"}));
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<std::int64_t>(i));
  }
  // The cold job's events share one trace id and job id end to end.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].job, events[0].job);
    EXPECT_EQ(events[i].trace, events[0].trace);
    EXPECT_EQ(events[i].tenant, "alice");
    EXPECT_FALSE(events[i].cached);
  }
  EXPECT_FALSE(events[0].trace.empty());
  // The hit is marked as served from cache, under its own trace.
  EXPECT_EQ(events[6].tenant, "bob");
  EXPECT_TRUE(events[5].cached);
  EXPECT_TRUE(events[6].cached);
  EXPECT_NE(events[6].trace, events[0].trace);
  EXPECT_EQ(events[5].hash, events[0].hash);  // same content address

  // The file round-trips exactly: each row is its event's to_json().
  std::ifstream in(path);
  std::string line;
  std::size_t row = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(row, events.size());
    EXPECT_EQ(line, events[row].to_json());
    ++row;
  }
  EXPECT_EQ(row, events.size());
  fs::remove(path);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Audit, ReplayIsBitwiseDeterministicAcrossFreshRuns) {
  // Two identical submission sequences against fresh services: the replay
  // documents (events minus wall-clock stamps) must match byte for byte -
  // trace ids are minted from (content hash, job id), so the journeys
  // align too.
  const auto replay_of = [](const std::string& tag) {
    ServiceConfig cfg = test_config("replay_" + tag);
    const std::string path =
        (fs::temp_directory_path() / ("psdns_audit_replay_" + tag + ".jsonl"))
            .string();
    run_audited_workload(cfg, path, 51);
    const std::string replay = audit_replay(read_audit_jsonl(path));
    fs::remove(path);
    fs::remove_all(cfg.cache_dir);
    fs::remove_all(cfg.workdir);
    return replay;
  };
  const std::string a = replay_of("a");
  const std::string b = replay_of("b");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"event\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(a.find("\"cached\":true"), std::string::npos);
  EXPECT_EQ(a.find("t_s"), std::string::npos);
}

TEST(Audit, ReaderNamesTheBadLineAndMissingFile) {
  const std::string path =
      (fs::temp_directory_path() / "psdns_audit_bad.jsonl").string();
  {
    AuditLog log(path);
    log.append(AuditEvent{});
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage\n";
  }
  try {
    read_audit_jsonl(path);
    FAIL() << "malformed row must throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos);
  }
  fs::remove(path);
  EXPECT_THROW(read_audit_jsonl(path), util::Error);
}

TEST(Scheduler, BoundedQueueRejectsOverflow) {
  ServiceConfig cfg = test_config("overflow");
  cfg.queue_capacity = 2;
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  Scheduler sched(cfg, store, /*autostart=*/false);
  const auto first = sched.submit(small_request(1));
  EXPECT_TRUE(first.accepted);
  EXPECT_TRUE(sched.submit(small_request(2)).accepted);
  const auto rejected = sched.submit(small_request(3));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.error, "admission queue full");
  // Cancel one queued job, freeing a slot.
  EXPECT_TRUE(sched.cancel(first.id));
  EXPECT_TRUE(sched.submit(small_request(3)).accepted);
  sched.shutdown();
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Scheduler, FaultedJobRecoversAndMatchesCleanResult) {
  // Same shape as the driver's supervised drill: 16^3, 2 ranks, 4 steps,
  // so the @5 fault lands mid-run with a checkpoint behind it.
  JobRequest drill = small_request(11, "alice");
  drill.ranks = 2;
  drill.steps = 4;

  // Clean reference run.
  ServiceConfig clean_cfg = test_config("drill_clean");
  ResultStore clean_store({clean_cfg.cache_dir, clean_cfg.cache_keep});
  Scheduler clean(clean_cfg, clean_store);
  const auto clean_sub = clean.submit(drill);
  clean.drain();
  const auto clean_result = clean.result(clean_sub.id);
  ASSERT_TRUE(clean_result.has_value());
  EXPECT_EQ(clean.job(clean_sub.id)->recoveries, 0);

  // Same request with a mid-job comm fault: the supervisor rolls back and
  // replays; the job still completes and stores the identical bytes.
  ServiceConfig faulted_cfg = test_config("drill_faulted");
  ResultStore faulted_store({faulted_cfg.cache_dir, faulted_cfg.cache_keep});
  std::int64_t id = -1;
  {
    resilience::ScopedPlan plan("comm.alltoall@5=throw");
    Scheduler faulted(faulted_cfg, faulted_store);
    id = faulted.submit(drill).id;
    faulted.drain();
    const auto record = faulted.job(id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->state, JobState::Done);
    EXPECT_EQ(record->recoveries, 1);  // reported in GET /jobs/<id>
    const auto faulted_result = faulted.result(id);
    ASSERT_TRUE(faulted_result.has_value());
    EXPECT_EQ(*faulted_result, *clean_result);
  }
  fs::remove_all(clean_cfg.cache_dir);
  fs::remove_all(clean_cfg.workdir);
  fs::remove_all(faulted_cfg.cache_dir);
  fs::remove_all(faulted_cfg.workdir);
}

TEST(Scheduler, UnrecoverableJobIsReportedFailed) {
  // Pencil jobs run unsupervised, so a single injected fault fails the job
  // (and must not take the service down with it).
  ServiceConfig cfg = test_config("failed");
  ResultStore store({cfg.cache_dir, cfg.cache_keep});
  resilience::ScopedPlan plan("comm.alltoall@3=throw");
  Scheduler sched(cfg, store);
  JobRequest req = small_request(5);
  req.decomposition = Decomposition::Pencil;
  req.ranks = 2;
  const auto sub = sched.submit(req);
  sched.drain();
  const auto record = sched.job(sub.id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::Failed);
  EXPECT_NE(record->error.find("injected fault"), std::string::npos);
  EXPECT_FALSE(sched.result(sub.id).has_value());
  // The scheduler keeps serving after the failure.
  EXPECT_GT(obs::registry().counter("svc.jobs.failed"), 0);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Runner, SlabAndPencilDecompositionsCacheSeparately) {
  JobRequest slab = small_request(3);
  JobRequest pencil = small_request(3);
  pencil.decomposition = Decomposition::Pencil;
  EXPECT_NE(slab.hash(), pencil.hash());

  const std::string workdir = tmp_dir("psdns_runner_pencil");
  const JobOutcome outcome = run_job(pencil, workdir);
  const obs::JsonValue doc = obs::json_parse(outcome.result_json);
  EXPECT_EQ(doc.at("schema").string, "psdns.svc.result.v1");
  EXPECT_EQ(doc.at("hash").string, pencil.hash());
  EXPECT_EQ(static_cast<std::int64_t>(doc.at("steps_run").number), 2);
  EXPECT_GT(doc.at("diagnostics").at("energy").number, 0.0);
  EXPECT_FALSE(doc.at("spectrum").array.empty());
  fs::remove_all(workdir);
}

// --- HTTP front end ------------------------------------------------------

TEST(Service, EndToEndSubmitPollResultAndMetrics) {
  ServiceConfig cfg = test_config("http", /*max_concurrent=*/2);
  Service service(cfg);
  const int port = service.port();

  // Invalid request -> 400 naming the problem.
  int status = 0;
  net::http_post("127.0.0.1", port, "/jobs", "{\"grid\":16}", &status);
  EXPECT_EQ(status, 400);

  // Submit two tenants' jobs over HTTP.
  const std::string a = net::http_post(
      "127.0.0.1", port, "/jobs", small_request(21, "alice").to_json(),
      &status);
  EXPECT_EQ(status, 202);
  const std::string b = net::http_post(
      "127.0.0.1", port, "/jobs", small_request(22, "bob").to_json(),
      &status);
  EXPECT_EQ(status, 202);
  const auto id_a =
      static_cast<std::int64_t>(obs::json_parse(a).at("id").number);
  const auto id_b =
      static_cast<std::int64_t>(obs::json_parse(b).at("id").number);

  const auto wait_done = [&](std::int64_t id) {
    for (;;) {
      const std::string record = net::http_get(
          "127.0.0.1", port, "/jobs/" + std::to_string(id), &status);
      const std::string state = obs::json_parse(record).at("state").string;
      if (state == "done" || state == "failed") return state;
    }
  };
  EXPECT_EQ(wait_done(id_a), "done");
  EXPECT_EQ(wait_done(id_b), "done");

  // Result route serves the stored document.
  const std::string result = net::http_get(
      "127.0.0.1", port, "/jobs/" + std::to_string(id_a) + "/result",
      &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(obs::json_parse(result).at("schema").string,
            "psdns.svc.result.v1");

  // Identical resubmission -> cache hit without a re-run.
  const std::string again = net::http_post(
      "127.0.0.1", port, "/jobs", small_request(21, "bob").to_json(),
      &status);
  EXPECT_EQ(status, 202);
  EXPECT_TRUE(obs::json_parse(again).at("cached").boolean);

  // Observability routes.
  const std::string queue =
      net::http_get("127.0.0.1", port, "/queue", &status);
  EXPECT_EQ(status, 200);
  const obs::JsonValue qdoc = obs::json_parse(queue);
  EXPECT_GE(qdoc.at("completed").number, 2.0);
  EXPECT_GE(qdoc.at("cache").at("hits").number, 1.0);
  const std::string metrics =
      net::http_get("127.0.0.1", port, "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics.find("psdns_svc_cache_hits{stat=\"sum\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("psdns_svc_jobs_completed"), std::string::npos);

  net::http_get("127.0.0.1", port, "/jobs/9999", &status);
  EXPECT_EQ(status, 404);
  net::http_get("127.0.0.1", port, "/nope", &status);
  EXPECT_EQ(status, 404);

  // Graceful drain: health flips to 503 and new submissions are refused.
  net::http_post("127.0.0.1", port, "/shutdown", "", &status);
  EXPECT_EQ(status, 202);
  service.wait_shutdown();
  net::http_get("127.0.0.1", port, "/health", &status);
  EXPECT_EQ(status, 503);
  net::http_post("127.0.0.1", port, "/jobs",
                 small_request(23, "alice").to_json(), &status);
  EXPECT_EQ(status, 503);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Service, JobJourneyTraceIsServedAsChromeJson) {
  // Tracing is process-global state; start clean and restore at the end.
  obs::set_tracing(false);
  obs::clear_trace();
  ServiceConfig cfg = test_config("journey");
  cfg.trace = true;  // the ctor enables span capture
  {
    Service service(cfg);
    const int port = service.port();
    ASSERT_TRUE(obs::tracing());

    // The client names the journey via X-Psdns-Trace; the id is echoed in
    // both the response document and the response header.
    int status = 0;
    net::HttpHeaders response_headers;
    const std::string body = net::http_post(
        "127.0.0.1", port, "/jobs", small_request(61, "alice").to_json(),
        &status, 30.0, {{"X-Psdns-Trace", "tjourney61"}}, &response_headers);
    ASSERT_EQ(status, 202);
    const obs::JsonValue sub = obs::json_parse(body);
    EXPECT_EQ(sub.at("trace").string, "tjourney61");
    EXPECT_EQ(net::header_get(response_headers, "x-psdns-trace"),
              "tjourney61");
    const auto id = static_cast<std::int64_t>(sub.at("id").number);

    for (;;) {
      const std::string record = net::http_get(
          "127.0.0.1", port, "/jobs/" + std::to_string(id), &status);
      const std::string state = obs::json_parse(record).at("state").string;
      if (state == "done") break;
      ASSERT_NE(state, "failed");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // GET /jobs/<id>/trace returns the merged journey: the service lanes
    // (admit/queue/schedule/run/store) plus the solver's driver.step spans
    // reached through the run flow, with Chrome flow events linking them.
    const std::string trace_json = net::http_get(
        "127.0.0.1", port, "/jobs/" + std::to_string(id) + "/trace",
        &status);
    ASSERT_EQ(status, 200);
    const obs::JsonValue doc = obs::json_parse(trace_json);
    ASSERT_TRUE(doc.is_array());
    std::map<std::string, int> names;
    int flow_starts = 0, flow_finishes = 0;
    for (const auto& ev : doc.array) {
      const std::string ph = ev.at("ph").string;
      if (ph == "X") ++names[ev.at("name").string];
      if (ph == "s") ++flow_starts;
      if (ph == "f") ++flow_finishes;
    }
    for (const char* lane : {"svc.admit", "svc.queue", "svc.schedule",
                             "svc.run", "svc.store", "driver.step"}) {
      EXPECT_GE(names[lane], 1) << "missing journey span " << lane;
    }
    EXPECT_EQ(names["driver.step"], 2);  // steps = 2, nothing else's steps
    EXPECT_GE(flow_starts, 1);
    EXPECT_EQ(flow_starts, flow_finishes);

    // A second job's trace id is minted deterministically: "t" + 16 hex.
    const std::string other = net::http_post(
        "127.0.0.1", port, "/jobs", small_request(62, "alice").to_json(),
        &status);
    ASSERT_EQ(status, 202);
    const std::string minted = obs::json_parse(other).at("trace").string;
    ASSERT_EQ(minted.size(), 17u);
    EXPECT_EQ(minted[0], 't');
    for (std::size_t i = 1; i < minted.size(); ++i) {
      EXPECT_TRUE((minted[i] >= '0' && minted[i] <= '9') ||
                  (minted[i] >= 'a' && minted[i] <= 'f'));
    }

    net::http_get("127.0.0.1", port, "/jobs/9999/trace", &status);
    EXPECT_EQ(status, 404);
  }
  obs::set_tracing(false);
  obs::clear_trace();
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

TEST(Service, TraceRouteExplainsWhenTracingIsOff) {
  ServiceConfig cfg = test_config("notrace");
  ASSERT_FALSE(obs::tracing());
  Service service(cfg);
  int status = 0;
  const std::string body = net::http_post(
      "127.0.0.1", service.port(), "/jobs",
      small_request(63, "alice").to_json(), &status);
  ASSERT_EQ(status, 202);
  const auto id =
      static_cast<std::int64_t>(obs::json_parse(body).at("id").number);
  const std::string trace = net::http_get(
      "127.0.0.1", service.port(), "/jobs/" + std::to_string(id) + "/trace",
      &status);
  EXPECT_EQ(status, 404);
  EXPECT_NE(trace.find("PSDNS_SVC_TRACE"), std::string::npos);
  fs::remove_all(cfg.cache_dir);
  fs::remove_all(cfg.workdir);
}

// --- header parsing and propagation (net/http) ---------------------------

/// Writes raw bytes to the server and returns the raw response - the only
/// way to exercise malformed heads the client renderer refuses to emit.
std::string raw_http(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t done = 0;
  while (done < request.size()) {
    const ssize_t n = ::write(fd, request.data() + done,
                              request.size() - done);
    if (n <= 0) break;
    done += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpHeaders, CustomRequestAndResponseHeadersRoundTrip) {
  net::HttpServer server({}, [](const net::HttpRequest& req) {
    // Case-insensitive lookup server-side, custom header on the way back.
    net::HttpResponse resp =
        net::HttpResponse::text(req.header("x-psdns-trace"));
    resp.headers.emplace_back("X-Echo", req.header("X-Psdns-Trace"));
    return resp;
  });
  int status = 0;
  net::HttpHeaders response_headers;
  const std::string body = net::http_get(
      "127.0.0.1", server.port(), "/", &status, 30.0,
      {{"X-Psdns-Trace", "tjourney42"}}, &response_headers);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "tjourney42");
  EXPECT_EQ(net::header_get(response_headers, "x-echo"), "tjourney42");
  EXPECT_NE(net::header_get(response_headers, "content-length"), "");
  // Absent header -> "", not a throw.
  EXPECT_EQ(net::header_get(response_headers, "x-missing"), "");
}

TEST(HttpHeaders, FetchOptionsForwardHeadersAndCaptureResponse) {
  // The retrying svc client rides the same header plumbing (psdns_submit
  // sends X-Psdns-Trace through it).
  net::HttpServer server({}, [](const net::HttpRequest& req) {
    net::HttpResponse resp = net::HttpResponse::text("ok");
    resp.headers.emplace_back("X-Echo", req.header("X-Psdns-Trace"));
    return resp;
  });
  FetchOptions options;
  options.headers.emplace_back("X-Psdns-Trace", "tclient1");
  net::HttpHeaders response_headers;
  options.response_headers = &response_headers;
  int status = 0;
  const std::string body =
      fetch("127.0.0.1", server.port(), "/", &status, options);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok");
  EXPECT_EQ(net::header_get(response_headers, "x-echo"), "tclient1");
}

TEST(HttpHeaders, FoldedContinuationJoinsWithOneSpace) {
  net::HttpServer server({}, [](const net::HttpRequest& req) {
    return net::HttpResponse::text(req.header("X-Long"));
  });
  const std::string response = raw_http(
      server.port(),
      "GET / HTTP/1.1\r\nHost: t\r\nX-Long: part one\r\n\t and two\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("part one and two"), std::string::npos);
}

TEST(HttpHeaders, MalformedHeaderLinesAreRefusedWith400) {
  net::HttpServer server({}, [](const net::HttpRequest&) {
    return net::HttpResponse::text("handler must not run");
  });
  const std::string no_colon = raw_http(
      server.port(), "GET / HTTP/1.1\r\nHost no colon here\r\n\r\n");
  EXPECT_NE(no_colon.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(no_colon.find("no colon"), std::string::npos);

  const std::string bad_name = raw_http(
      server.port(), "GET / HTTP/1.1\r\nBad Name: value\r\n\r\n");
  EXPECT_NE(bad_name.find("HTTP/1.1 400"), std::string::npos);

  const std::string orphan_fold = raw_http(
      server.port(), "GET / HTTP/1.1\r\n continued-from-nothing\r\n\r\n");
  EXPECT_NE(orphan_fold.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_EQ(orphan_fold.find("handler must not run"), std::string::npos);
}

TEST(HttpHeaders, OversizedHeadIsRefusedNotHung) {
  net::HttpServer server({}, [](const net::HttpRequest&) {
    return net::HttpResponse::text("handler must not run");
  });
  const util::Stopwatch watch;
  // 16 KiB of head without a terminator in the first 8 KiB: the server
  // must answer 400 after its bounded read, never buffer without limit.
  const std::string response = raw_http(
      server.port(),
      "GET / HTTP/1.1\r\nX-Big: " + std::string(16 * 1024, 'x') + "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("request head too large"), std::string::npos);
  EXPECT_LT(watch.seconds(), 5.0);
}

TEST(HttpHeaders, TooManyHeadersAreRefused) {
  net::HttpServer server({}, [](const net::HttpRequest&) {
    return net::HttpResponse::text("handler must not run");
  });
  std::string head = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 120; ++i) {
    head += "X-H" + std::to_string(i) + ": v\r\n";  // stays under 8 KiB
  }
  head += "\r\n";
  const std::string response = raw_http(server.port(), head);
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("too many headers"), std::string::npos);
}

// --- client timeout + retry (the hardened http_get) ----------------------

TEST(HttpClient, TimesOutOnSilentPeer) {
  // A listening socket that never answers: accept backlog lets connect()
  // succeed, then the exchange must hit the deadline instead of blocking
  // forever (the seed behavior).
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  const util::Stopwatch watch;
  EXPECT_THROW(net::http_get("127.0.0.1", port, "/", nullptr, 0.3),
               util::Error);
  EXPECT_LT(watch.seconds(), 5.0);
  ::close(listener);
}

TEST(HttpClient, FetchRetriesPerPolicy) {
  // Find a port that is certainly closed by binding then closing it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);
  ::close(probe);

  FetchOptions options;
  options.timeout_s = 0.2;
  options.retry.max_attempts = 3;
  options.retry.base_delay_s = 1e-4;
  const std::int64_t before =
      obs::registry().counter("resilience.retries");
  EXPECT_THROW(fetch("127.0.0.1", port, "/metrics", nullptr, options),
               util::Error);
  EXPECT_EQ(obs::registry().counter("resilience.retries"), before + 2);
}

}  // namespace
}  // namespace psdns::svc
