// End-to-end integration: the full production workflow in one test file -
// spin-up, diagnostics, checkpoint, restart on a different rank count,
// spectral regrid to a finer grid with scalars, continued stepping - plus
// cross-module consistency checks (functional DNS cost accounting vs the
// Summit co-simulation's variable counts).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "comm/communicator.hpp"
#include "dns/regrid.hpp"
#include "dns/solver.hpp"
#include "dns/statistics.hpp"
#include "io/checkpoint.hpp"
#include "pipeline/dns_step_model.hpp"

namespace psdns {
namespace {

TEST(Integration, FullCampaignWorkflow) {
  const auto ckp =
      (std::filesystem::temp_directory_path() / "psdns_campaign.ckp")
          .string();

  // Phase 1: spin up forced turbulence with a scalar on 4 ranks.
  dns::SolverConfig cfg;
  cfg.n = 24;
  cfg.viscosity = 0.01;
  cfg.forcing.enabled = true;
  cfg.forcing.power = 0.3;
  cfg.scalars = {{.schmidt = 1.0, .mean_gradient = 1.0}};

  double phase1_energy = 0.0;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(100, 2.5, 0.5);
    for (int s = 0; s < 10; ++s) {
      solver.step(std::min(solver.cfl_dt(0.4), 0.02));
    }
    const auto d = solver.diagnostics();
    EXPECT_GT(d.energy, 0.1);
    EXPECT_LT(d.max_divergence, 1e-10);
    EXPECT_GT(solver.scalar_diagnostics(0).variance, 0.0);
    io::save_checkpoint(ckp, solver);
    if (comm.rank() == 0) phase1_energy = d.energy;
  });

  // Phase 2: restart on 2 ranks, regrid to 48^3, continue.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver resumed(comm, cfg);
    const auto info = io::load_checkpoint(ckp, resumed);
    EXPECT_EQ(info.step, 10);
    EXPECT_NEAR(resumed.diagnostics().energy, phase1_energy, 1e-10);

    dns::SolverConfig fine = cfg;
    fine.n = 48;
    fine.viscosity = 0.006;
    dns::SlabSolver continued(comm, fine);
    dns::spectral_regrid(resumed, continued);
    EXPECT_NEAR(continued.diagnostics().energy, phase1_energy, 1e-10);

    for (int s = 0; s < 5; ++s) {
      continued.step(std::min(continued.cfl_dt(0.4), 0.01));
    }
    const auto d = continued.diagnostics();
    EXPECT_GT(d.energy, 0.05);
    EXPECT_LT(d.max_divergence, 1e-10);

    // Turbulence statistics sane on the continued run.
    const auto spec = continued.spectrum();
    EXPECT_NEAR(dns::spectrum_energy(spec), d.energy, 1e-9);
    EXPECT_GT(dns::integral_length_scale(spec), 0.1);
    const auto m = continued.derivative_moments();
    EXPECT_LT(m.skewness, 0.0);   // cascade developed
    EXPECT_GT(m.flatness, 3.0);   // intermittency above gaussian
  });
  std::remove(ckp.c_str());
}

TEST(Integration, DerivativeMomentsGaussianBaseline) {
  // A freshly seeded random-phase field is near-gaussian: skewness ~ 0,
  // flatness ~ 3.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = 32;
    cfg.viscosity = 0.01;
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(55, 4.0, 1.0);
    const auto m = solver.derivative_moments();
    EXPECT_NEAR(m.skewness, 0.0, 0.15);
    EXPECT_NEAR(m.flatness, 3.0, 0.5);
    EXPECT_NEAR(m.skewness, solver.derivative_skewness(), 1e-12);
  });
}

TEST(Integration, FunctionalTransposeCountMatchesCostModel) {
  // The co-simulation charges (9 + 4m) variable-transposes per substep;
  // the functional solver must move exactly that many variables. Count
  // them through the batched FFT interface by comparing a scalar run's
  // communication volume proxy: fields in + products out.
  dns::SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  cfg.scalars = {{.schmidt = 1.0}};
  // 3+1 fields inverse + 6+3 products forward = 13 variable-transposes per
  // substep = (9 + 4*1). The pipeline model's scalar ablation asserts the
  // same ratio; here we assert the functional configuration constructs.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(1, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 2, 3.0, 0.3);
    EXPECT_NO_THROW(solver.step(0.01));
  });

  pipeline::DnsStepModel model;
  pipeline::PipelineConfig pcfg;
  pcfg.n = 12288;
  pcfg.nodes = 1024;
  pcfg.pencils = 3;
  pcfg.scalars = 1;
  const double with_scalar = model.simulate_gpu_step(pcfg).seconds;
  pcfg.scalars = 0;
  const double baseline = model.simulate_gpu_step(pcfg).seconds;
  EXPECT_GT(with_scalar, baseline * 1.2);
}

TEST(Integration, SoakModerateResolutionStaysStable) {
  // A short high-resolution (for this substrate) decaying run: no NaNs, no
  // energy growth without forcing, divergence at round-off throughout.
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = 64;
    cfg.viscosity = 0.004;
    cfg.pencils = 4;
    cfg.pencils_per_a2a = 2;
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(2026, 4.0, 0.8);
    double prev = solver.diagnostics().energy;
    for (int s = 0; s < 5; ++s) {
      solver.step(std::min(solver.cfl_dt(0.4), 0.01));
      const auto d = solver.diagnostics();
      EXPECT_TRUE(std::isfinite(d.energy));
      EXPECT_LT(d.energy, prev);  // decaying: no spurious energy input
      EXPECT_LT(d.max_divergence, 1e-9);
      prev = d.energy;
    }
  });
}

}  // namespace
}  // namespace psdns
