#include <gtest/gtest.h>

#include "model/geometry.hpp"
#include "model/paper.hpp"
#include "net/alltoall_model.hpp"

namespace psdns::net {
namespace {

using model::ProblemConfig;
using model::paper::kCases;
using model::paper::kTable2;

constexpr double kMiB = 1024.0 * 1024.0;

AlltoallModel default_model() { return AlltoallModel{}; }

TEST(AlltoallModel, OffnodeBytesExcludeOnNodePeers) {
  AlltoallModel m = default_model();
  // 2 nodes x 2 tasks, 10 bytes per pair: each node's 2 ranks send to the 2
  // off-node ranks only -> 2*2*10 = 40 bytes.
  EXPECT_DOUBLE_EQ(m.offnode_bytes_per_node(2, 2, 10.0), 40.0);
}

TEST(AlltoallModel, TimeIncreasesWithMessageVolume) {
  AlltoallModel m = default_model();
  EXPECT_LT(m.time(128, 2, 1e6), m.time(128, 2, 4e6));
}

TEST(AlltoallModel, LargerMessagesGetBetterBandwidth) {
  AlltoallModel m = default_model();
  EXPECT_LT(m.effective_injection_bw(1024, 2, 0.2e6),
            m.effective_injection_bw(1024, 2, 5e6));
}

TEST(AlltoallModel, ScaleCongestionDegradesBandwidth) {
  AlltoallModel m = default_model();
  EXPECT_GT(m.effective_injection_bw(16, 2, 10e6),
            m.effective_injection_bw(3072, 2, 10e6));
}

TEST(AlltoallModel, BandwidthNeverExceedsPeak) {
  AlltoallModel m = default_model();
  for (const int nodes : {2, 16, 128, 1024, 3072}) {
    for (const double s : {1e3, 64e3, 1e6, 10e6, 300e6}) {
      EXPECT_LE(m.effective_injection_bw(nodes, 6, s),
                m.params().peak_injection_bw);
    }
  }
}

// --- calibration against Table 2 ---

struct Cell {
  int nodes;
  int tpn;
  double p2p;       // bytes
  double paper_bw;  // GB/s, paper's Eq. 3 convention
};

std::vector<Cell> table2_cells() {
  std::vector<Cell> cells;
  for (const auto& row : kTable2) {
    cells.push_back({row.nodes, 6, row.p2p_a_mb * kMiB, row.bw_a});
    cells.push_back({row.nodes, 2, row.p2p_b_mb * kMiB, row.bw_b});
    cells.push_back({row.nodes, 2, row.p2p_c_mb * kMiB, row.bw_c});
  }
  return cells;
}

TEST(Table2Calibration, ReportedBandwidthWithin35Percent) {
  AlltoallModel m = default_model();
  for (const auto& cell : table2_cells()) {
    const double got =
        m.reported_bw_per_node(cell.nodes, cell.tpn, cell.p2p) / 1e9;
    EXPECT_GT(got, 0.65 * cell.paper_bw)
        << "nodes=" << cell.nodes << " tpn=" << cell.tpn
        << " p2p=" << cell.p2p;
    EXPECT_LT(got, 1.35 * cell.paper_bw)
        << "nodes=" << cell.nodes << " tpn=" << cell.tpn
        << " p2p=" << cell.p2p;
  }
}

TEST(Table2Calibration, CaseBBeatsCaseAUpTo1024Nodes) {
  AlltoallModel m = default_model();
  for (const auto& row : kTable2) {
    if (row.nodes > 1024) continue;
    EXPECT_GT(m.reported_bw_per_node(row.nodes, 2, row.p2p_b_mb * kMiB),
              m.reported_bw_per_node(row.nodes, 6, row.p2p_a_mb * kMiB))
        << "nodes=" << row.nodes;
  }
}

TEST(Table2Calibration, EagerPathFlipsAAboveBAt3072Nodes) {
  // The paper's surprise: at 3072 nodes the 53 KB case-A messages get a
  // better effective bandwidth than case B's 470 KB messages.
  AlltoallModel m = default_model();
  EXPECT_GT(m.reported_bw_per_node(3072, 6, 0.053 * kMiB),
            m.reported_bw_per_node(3072, 2, 0.47 * kMiB));
}

TEST(Table2Calibration, SlabMessagesWinAtEveryScaleAbove16) {
  AlltoallModel m = default_model();
  for (const auto& row : kTable2) {
    if (row.nodes <= 16) continue;
    EXPECT_GE(m.reported_bw_per_node(row.nodes, 2, row.p2p_c_mb * kMiB),
              m.reported_bw_per_node(row.nodes, 2, row.p2p_b_mb * kMiB))
        << "nodes=" << row.nodes;
  }
}

TEST(Table2Calibration, AbsoluteTimesAreSaneAtFlagshipScale) {
  // 18432^3 on 3072 nodes, case C (whole slab of 3 variables): the paper's
  // Eq. 3 numbers imply roughly 2.6 s per all-to-all.
  AlltoallModel m = default_model();
  const double t = m.time(3072, 2, 1.90 * kMiB);
  EXPECT_GT(t, 1.5);
  EXPECT_LT(t, 4.5);
}

TEST(AlltoallModel, SingleNodeCollectiveIsCheap) {
  AlltoallModel m = default_model();
  EXPECT_LT(m.time(1, 6, 100e6), 1e-3);
}

}  // namespace
}  // namespace psdns::net
