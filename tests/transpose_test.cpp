#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/fft3d.hpp"
#include "transpose/dist_fft.hpp"
#include "transpose/pencil.hpp"
#include "transpose/slab.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace psdns::transpose {
namespace {

// Deterministic per-global-index values so every rank can check any element.
Complex cval(std::size_t i, std::size_t j, std::size_t k) {
  util::SplitMix64 sm(1 + i + 1000 * j + 1000000 * k);
  const double a = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  const double b = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return Complex{a - 0.5, b - 0.5};
}

double rval(std::size_t i, std::size_t j, std::size_t k) {
  return cval(i, j, k).real();
}

TEST(PencilRange, EvenAndUnevenSplits) {
  EXPECT_EQ(pencil_range(12, 3, 0).x0, 0u);
  EXPECT_EQ(pencil_range(12, 3, 0).x1, 4u);
  EXPECT_EQ(pencil_range(12, 3, 2).x1, 12u);
  // nxh = 17 over 4 pencils: 4,4,4,5.
  EXPECT_EQ(pencil_range(17, 4, 0).width(), 4u);
  EXPECT_EQ(pencil_range(17, 4, 3).width(), 5u);
  EXPECT_EQ(pencil_range(17, 4, 3).x1, 17u);
  EXPECT_THROW(pencil_range(8, 2, 2), util::Error);
}

class SlabTransposeP : public ::testing::TestWithParam<int> {};

TEST_P(SlabTransposeP, ZToYPlacesEveryElement) {
  const int P = GetParam();
  const std::size_t nxh = 9, ny = 8, nz = 16;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabGrid grid{nxh, ny, nz, P};
    SlabTranspose tp(comm, grid);
    const std::size_t mz = grid.mz(), my = grid.my();
    const std::size_t z0 = static_cast<std::size_t>(comm.rank()) * mz;
    const std::size_t y0 = static_cast<std::size_t>(comm.rank()) * my;

    std::vector<Complex> a(grid.zslab_elems());
    for (std::size_t kk = 0; kk < mz; ++kk) {
      for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t i = 0; i < nxh; ++i) {
          a[i + nxh * (j + ny * kk)] = cval(i, j, z0 + kk);
        }
      }
    }
    std::vector<Complex> b(grid.yslab_elems(), Complex{-9, -9});
    const Complex* ap = a.data();
    Complex* bp = b.data();
    tp.z_to_y(std::span<const Complex* const>(&ap, 1),
              std::span<Complex* const>(&bp, 1));

    for (std::size_t jj = 0; jj < my; ++jj) {
      for (std::size_t k = 0; k < nz; ++k) {
        for (std::size_t i = 0; i < nxh; ++i) {
          EXPECT_EQ(b[i + nxh * (k + nz * jj)], cval(i, y0 + jj, k))
              << "rank=" << comm.rank() << " i=" << i << " k=" << k
              << " jj=" << jj;
        }
      }
    }
  });
}

TEST_P(SlabTransposeP, RoundTripIsIdentity) {
  const int P = GetParam();
  const std::size_t nxh = 5, ny = 8, nz = 8;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabGrid grid{nxh, ny, nz, P};
    SlabTranspose tp(comm, grid);
    util::Rng rng(77, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Complex> a(grid.zslab_elems());
    for (auto& c : a) c = Complex{rng.gaussian(), rng.gaussian()};
    const auto orig = a;
    std::vector<Complex> b(grid.yslab_elems());
    const Complex* ap = a.data();
    Complex* bp = b.data();
    tp.z_to_y(std::span<const Complex* const>(&ap, 1),
              std::span<Complex* const>(&bp, 1));
    const Complex* bcp = b.data();
    Complex* amp = a.data();
    tp.y_to_z(std::span<const Complex* const>(&bcp, 1),
              std::span<Complex* const>(&amp, 1));
    EXPECT_EQ(a, orig);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SlabTransposeP, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "P" + std::to_string(pinfo.param);
                         });

TEST(SlabTranspose, PencilBatchingMatchesWholeSlab) {
  // np pencils, various Q groupings: all must equal the single all-to-all.
  const int P = 4;
  const std::size_t nxh = 13, ny = 8, nz = 8;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabGrid grid{nxh, ny, nz, P};
    SlabTranspose tp(comm, grid);
    util::Rng rng(5, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Complex> a(grid.zslab_elems());
    for (auto& c : a) c = Complex{rng.gaussian(), rng.gaussian()};

    std::vector<Complex> whole(grid.yslab_elems(), Complex{0, 0});
    const Complex* ap = a.data();
    Complex* wp = whole.data();
    tp.z_to_y(std::span<const Complex* const>(&ap, 1),
              std::span<Complex* const>(&wp, 1), 1, 1);

    for (const auto& [np, q] : {std::pair{4, 1}, {4, 2}, {4, 4}, {3, 2}}) {
      std::vector<Complex> batched(grid.yslab_elems(), Complex{0, 0});
      Complex* bp = batched.data();
      tp.z_to_y(std::span<const Complex* const>(&ap, 1),
                std::span<Complex* const>(&bp, 1), np, q);
      EXPECT_EQ(batched, whole) << "np=" << np << " q=" << q;
    }
  });
}

TEST(SlabTranspose, MultipleVariablesInOneMessage) {
  const int P = 2;
  const std::size_t nxh = 4, ny = 4, nz = 4;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabGrid grid{nxh, ny, nz, P};
    SlabTranspose tp(comm, grid);
    const std::size_t z0 = static_cast<std::size_t>(comm.rank()) * grid.mz();
    std::vector<std::vector<Complex>> a(3);
    std::vector<const Complex*> aps(3);
    for (std::size_t v = 0; v < 3; ++v) {
      a[v].resize(grid.zslab_elems());
      for (std::size_t kk = 0; kk < grid.mz(); ++kk) {
        for (std::size_t j = 0; j < ny; ++j) {
          for (std::size_t i = 0; i < nxh; ++i) {
            a[v][i + nxh * (j + ny * kk)] =
                cval(i, j, z0 + kk) + Complex{static_cast<double>(v), 0};
          }
        }
      }
      aps[v] = a[v].data();
    }
    std::vector<std::vector<Complex>> b(3);
    std::vector<Complex*> bps(3);
    for (std::size_t v = 0; v < 3; ++v) {
      b[v].resize(grid.yslab_elems());
      bps[v] = b[v].data();
    }
    tp.z_to_y(std::span<const Complex* const>(aps.data(), 3),
              std::span<Complex* const>(bps.data(), 3));
    const std::size_t y0 = static_cast<std::size_t>(comm.rank()) * grid.my();
    for (std::size_t v = 0; v < 3; ++v) {
      for (std::size_t jj = 0; jj < grid.my(); ++jj) {
        for (std::size_t k = 0; k < nz; ++k) {
          for (std::size_t i = 0; i < nxh; ++i) {
            const Complex want =
                cval(i, y0 + jj, k) + Complex{static_cast<double>(v), 0};
            EXPECT_EQ(b[v][i + nxh * (k + nz * jj)], want);
          }
        }
      }
    }
  });
}

TEST(SlabGrid, RejectsIndivisibleShapes) {
  EXPECT_THROW((SlabGrid{4, 6, 8, 4}).validate(), util::Error);  // ny % 4 != 0
  EXPECT_THROW((SlabGrid{4, 8, 6, 4}).validate(), util::Error);  // nz % 4 != 0
  EXPECT_NO_THROW((SlabGrid{4, 8, 8, 4}).validate());
}

// --- pencil transpose ---

struct GridCase {
  int pr, pc;
};

class PencilTransposeP : public ::testing::TestWithParam<GridCase> {};

TEST_P(PencilTransposeP, FullCycleRoundTrip) {
  const auto [pr, pc] = GetParam();
  const std::size_t nxh = 9, ny = 8, nz = 8;
  comm::run_ranks(pr * pc, [&](comm::Communicator& comm) {
    PencilGrid grid{nxh, ny, nz, pr, pc};
    PencilTranspose tp(comm, grid);
    const std::size_t w = tp.x_range().width();

    util::Rng rng(9, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Complex> px(nxh * grid.yl() * grid.zl());
    for (auto& c : px) c = Complex{rng.gaussian(), rng.gaussian()};
    const auto orig = px;

    std::vector<Complex> py(ny * w * grid.zl());
    std::vector<Complex> pz(nz * w * grid.yl2());
    tp.x_to_y(px, py);
    tp.y_to_z(py, pz);
    std::fill(py.begin(), py.end(), Complex{0, 0});
    tp.z_to_y(pz, py);
    std::fill(px.begin(), px.end(), Complex{0, 0});
    tp.y_to_x(py, px);
    EXPECT_EQ(px, orig) << "pr=" << pr << " pc=" << pc;
  });
}

TEST_P(PencilTransposeP, GlobalPlacementIsCorrect) {
  const auto [pr, pc] = GetParam();
  const std::size_t nxh = 7, ny = 8, nz = 8;
  comm::run_ranks(pr * pc, [&](comm::Communicator& comm) {
    PencilGrid grid{nxh, ny, nz, pr, pc};
    PencilTranspose tp(comm, grid);
    const std::size_t yl = grid.yl(), zl = grid.zl(), yl2 = grid.yl2();
    const std::size_t y0 = static_cast<std::size_t>(tp.row_rank()) * yl;
    const std::size_t z0 = static_cast<std::size_t>(tp.col_rank()) * zl;

    std::vector<Complex> px(nxh * yl * zl);
    for (std::size_t kk = 0; kk < zl; ++kk) {
      for (std::size_t jj = 0; jj < yl; ++jj) {
        for (std::size_t i = 0; i < nxh; ++i) {
          px[i + nxh * (jj + yl * kk)] = cval(i, y0 + jj, z0 + kk);
        }
      }
    }

    const auto xr = tp.x_range();
    std::vector<Complex> py(ny * xr.width() * zl, Complex{-1, -1});
    tp.x_to_y(px, py);
    for (std::size_t kk = 0; kk < zl; ++kk) {
      for (std::size_t ii = 0; ii < xr.width(); ++ii) {
        for (std::size_t j = 0; j < ny; ++j) {
          EXPECT_EQ(py[j + ny * (ii + xr.width() * kk)],
                    cval(xr.x0 + ii, j, z0 + kk));
        }
      }
    }

    std::vector<Complex> pz(nz * xr.width() * yl2, Complex{-1, -1});
    tp.y_to_z(py, pz);
    const std::size_t y0b = static_cast<std::size_t>(tp.col_rank()) * yl2;
    for (std::size_t jj = 0; jj < yl2; ++jj) {
      for (std::size_t ii = 0; ii < xr.width(); ++ii) {
        for (std::size_t k = 0; k < nz; ++k) {
          EXPECT_EQ(pz[k + nz * (ii + xr.width() * jj)],
                    cval(xr.x0 + ii, y0b + jj, k));
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PencilTransposeP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{4, 2},
                      GridCase{2, 4}, GridCase{1, 4}, GridCase{4, 1}),
    [](const ::testing::TestParamInfo<GridCase>& pinfo) {
      return "Pr" + std::to_string(pinfo.param.pr) + "Pc" +
             std::to_string(pinfo.param.pc);
    });

// --- distributed FFTs vs serial reference ---

class SlabFftP : public ::testing::TestWithParam<int> {};

TEST_P(SlabFftP, ForwardMatchesSerialReference) {
  const int P = GetParam();
  const std::size_t n = 16;
  // Serial reference on the full cube.
  std::vector<Real> full(n * n * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        full[i + n * (j + n * k)] = rval(i, j, k);
      }
    }
  }
  const std::size_t h = n / 2 + 1;
  std::vector<Complex> want(h * n * n);
  fft::fft3d_r2c(fft::Shape3{n, n, n}, full.data(), want.data());

  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabFft3d fft3(comm, n);
    const std::size_t my = fft3.my(), mz = fft3.mz();
    const std::size_t y0 = static_cast<std::size_t>(comm.rank()) * my;
    const std::size_t z0 = static_cast<std::size_t>(comm.rank()) * mz;

    // Physical Y-slab: r[x + n*(k + n*jj)].
    std::vector<Real> phys(fft3.physical_elems());
    for (std::size_t jj = 0; jj < my; ++jj) {
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          phys[i + n * (k + n * jj)] = rval(i, y0 + jj, k);
        }
      }
    }
    std::vector<Complex> spec(fft3.spectral_elems());
    fft3.forward(phys, spec);

    for (std::size_t kk = 0; kk < mz; ++kk) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < h; ++i) {
          const Complex got = spec[i + h * (j + n * kk)];
          const Complex ref = want[i + h * (j + n * (z0 + kk))];
          EXPECT_LT(std::abs(got - ref), 1e-9)
              << "P=" << P << " i=" << i << " j=" << j << " k=" << z0 + kk;
        }
      }
    }
  });
}

TEST_P(SlabFftP, RoundTripScalesByVolume) {
  const int P = GetParam();
  const std::size_t n = 16;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    SlabFft3d fft3(comm, n);
    util::Rng rng(3, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Real> phys(fft3.physical_elems());
    for (auto& v : phys) v = rng.gaussian();
    std::vector<Complex> spec(fft3.spectral_elems());
    std::vector<Real> back(fft3.physical_elems());
    fft3.forward(phys, spec, /*np=*/2, /*q=*/1);
    fft3.inverse(spec, back, /*np=*/2, /*q=*/2);
    const double scale = static_cast<double>(n) * n * n;
    for (std::size_t idx = 0; idx < phys.size(); ++idx) {
      EXPECT_NEAR(back[idx] / scale, phys[idx], 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SlabFftP, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "P" + std::to_string(pinfo.param);
                         });

TEST(SlabFft, PooledForwardBitwiseMatchesInline) {
  // The pooled pack/unpack and line-FFT loops stripe deterministically, so
  // widening the worker pool must not move a single bit of the result.
  const std::size_t n = 16;
  std::vector<Complex> inline_spec, pooled_spec;
  auto& pool = util::ThreadPool::global();
  const int prev = pool.threads();
  for (std::vector<Complex>* out : {&inline_spec, &pooled_spec}) {
    pool.set_threads(out == &inline_spec ? 1 : 4);
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      SlabFft3d fft3(comm, n);
      const std::size_t my = fft3.my();
      const std::size_t y0 = static_cast<std::size_t>(comm.rank()) * my;
      std::vector<Real> phys(fft3.physical_elems());
      for (std::size_t jj = 0; jj < my; ++jj) {
        for (std::size_t k = 0; k < n; ++k) {
          for (std::size_t i = 0; i < n; ++i) {
            phys[i + n * (k + n * jj)] = rval(i, y0 + jj, k);
          }
        }
      }
      std::vector<Complex> spec(fft3.spectral_elems());
      fft3.forward(phys, spec);
      if (comm.rank() == 0) *out = spec;
    });
  }
  pool.set_threads(prev);
  ASSERT_EQ(inline_spec.size(), pooled_spec.size());
  for (std::size_t i = 0; i < inline_spec.size(); ++i) {
    ASSERT_EQ(inline_spec[i], pooled_spec[i]) << "i=" << i;
  }
}

class PencilFftP : public ::testing::TestWithParam<GridCase> {};

TEST_P(PencilFftP, ForwardMatchesSerialReference) {
  const auto [pr, pc] = GetParam();
  const std::size_t n = 16;
  std::vector<Real> full(n * n * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        full[i + n * (j + n * k)] = rval(i, j, k);
      }
    }
  }
  const std::size_t h = n / 2 + 1;
  std::vector<Complex> want(h * n * n);
  fft::fft3d_r2c(fft::Shape3{n, n, n}, full.data(), want.data());

  comm::run_ranks(pr * pc, [&](comm::Communicator& comm) {
    PencilFft3d fft3(comm, n, pr, pc);
    const auto& g = fft3.grid();
    PencilTranspose helper_ref(comm, g);  // only for rank coordinates
    const std::size_t yl = g.yl(), zl = g.zl(), yl2 = g.yl2();
    const std::size_t y0 = static_cast<std::size_t>(helper_ref.row_rank()) * yl;
    const std::size_t z0 = static_cast<std::size_t>(helper_ref.col_rank()) * zl;

    std::vector<Real> phys(fft3.physical_elems());
    for (std::size_t kk = 0; kk < zl; ++kk) {
      for (std::size_t jj = 0; jj < yl; ++jj) {
        for (std::size_t i = 0; i < n; ++i) {
          phys[i + n * (jj + yl * kk)] = rval(i, y0 + jj, z0 + kk);
        }
      }
    }
    std::vector<Complex> spec(fft3.spectral_elems());
    fft3.forward(phys, spec);

    const auto xr = fft3.x_range();
    const std::size_t ky0 =
        static_cast<std::size_t>(helper_ref.col_rank()) * yl2;
    for (std::size_t jj = 0; jj < yl2; ++jj) {
      for (std::size_t ii = 0; ii < xr.width(); ++ii) {
        for (std::size_t k = 0; k < n; ++k) {
          const Complex got = spec[k + n * (ii + xr.width() * jj)];
          const Complex ref = want[(xr.x0 + ii) + h * ((ky0 + jj) + n * k)];
          EXPECT_LT(std::abs(got - ref), 1e-9)
              << "pr=" << pr << " pc=" << pc << " kx=" << xr.x0 + ii
              << " ky=" << ky0 + jj << " kz=" << k;
        }
      }
    }
  });
}

TEST_P(PencilFftP, RoundTripScalesByVolume) {
  const auto [pr, pc] = GetParam();
  const std::size_t n = 8;
  comm::run_ranks(pr * pc, [&](comm::Communicator& comm) {
    PencilFft3d fft3(comm, n, pr, pc);
    util::Rng rng(4, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Real> phys(fft3.physical_elems());
    for (auto& v : phys) v = rng.gaussian();
    std::vector<Complex> spec(fft3.spectral_elems());
    std::vector<Real> back(fft3.physical_elems());
    fft3.forward(phys, spec);
    fft3.inverse(spec, back);
    const double scale = static_cast<double>(n) * n * n;
    for (std::size_t idx = 0; idx < phys.size(); ++idx) {
      EXPECT_NEAR(back[idx] / scale, phys[idx], 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PencilFftP,
    ::testing::Values(GridCase{1, 1}, GridCase{2, 2}, GridCase{4, 2},
                      GridCase{2, 4}),
    [](const ::testing::TestParamInfo<GridCase>& pinfo) {
      return "Pr" + std::to_string(pinfo.param.pr) + "Pc" +
             std::to_string(pinfo.param.pc);
    });

}  // namespace
}  // namespace psdns::transpose
