#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/bluestein.hpp"
#include "fft/dft.hpp"
#include "fft/factor.hpp"
#include "fft/fft3d.hpp"
#include "fft/mixed_radix.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "fft/stockham.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace psdns::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex{rng.gaussian(), rng.gaussian()};
  return v;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(Factor, PrimeFactors) {
  EXPECT_EQ(prime_factors(1), std::vector<std::size_t>{});
  EXPECT_EQ(prime_factors(12), (std::vector<std::size_t>{2, 2, 3}));
  EXPECT_EQ(prime_factors(18432),
            (std::vector<std::size_t>{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3}));
  EXPECT_EQ(prime_factors(97), std::vector<std::size_t>{97});
}

TEST(Factor, Smoothness) {
  EXPECT_TRUE(is_smooth(18432));
  EXPECT_TRUE(is_smooth(360));
  EXPECT_FALSE(is_smooth(97));
  EXPECT_FALSE(is_smooth(2 * 23));
}

TEST(Factor, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1023), 1024u);
}

// --- parameterized sweep over transform lengths ---

class C2CLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(C2CLength, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 100 + n);
  std::vector<Complex> want(n), got(n);
  dft_reference(Direction::Forward, n, x.data(), want.data());
  PlanC2C plan(n);
  plan.transform(Direction::Forward, x.data(), got.data());
  EXPECT_LT(max_abs_diff(want, got), 1e-9 * static_cast<double>(n))
      << "n=" << n;
}

TEST_P(C2CLength, InverseMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 200 + n);
  std::vector<Complex> want(n), got(n);
  dft_reference(Direction::Inverse, n, x.data(), want.data());
  PlanC2C plan(n);
  plan.transform(Direction::Inverse, x.data(), got.data());
  EXPECT_LT(max_abs_diff(want, got), 1e-9 * static_cast<double>(n));
}

TEST_P(C2CLength, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 300 + n);
  std::vector<Complex> f(n), back(n);
  PlanC2C plan(n);
  plan.transform(Direction::Forward, x.data(), f.data());
  plan.transform(Direction::Inverse, f.data(), back.data());
  plan.normalize(back.data(), n);
  EXPECT_LT(max_abs_diff(x, back), 1e-10 * static_cast<double>(n));
}

TEST_P(C2CLength, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 400 + n);
  std::vector<Complex> f(n);
  PlanC2C plan(n);
  plan.transform(Direction::Forward, x.data(), f.data());
  double phys = 0.0, spec = 0.0;
  for (const auto& c : x) phys += std::norm(c);
  for (const auto& c : f) spec += std::norm(c);
  EXPECT_NEAR(spec, phys * static_cast<double>(n),
              1e-8 * phys * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, C2CLength,
    ::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 12, 15, 16, 17, 24, 27, 30, 32,
                      36, 48, 60, 64, 97, 100, 128, 144, 192, 210, 243, 256,
                      360, 512),
    [](const ::testing::TestParamInfo<std::size_t>& pinfo) { return "n" + std::to_string(pinfo.param); });

TEST(C2C, InPlaceTransformAllowed) {
  const std::size_t n = 64;
  auto x = random_signal(n, 1);
  std::vector<Complex> want(n);
  PlanC2C plan(n);
  plan.transform(Direction::Forward, x.data(), want.data());
  plan.transform(Direction::Forward, x.data(), x.data());
  EXPECT_LT(max_abs_diff(want, x), 1e-12);
}

TEST(C2C, SingleFrequencyIsDelta) {
  const std::size_t n = 48;
  std::vector<Complex> x(n), f(n);
  const double k0 = 5.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double phase =
        2.0 * std::numbers::pi * k0 * static_cast<double>(j) / n;
    x[j] = Complex{std::cos(phase), std::sin(phase)};
  }
  PlanC2C plan(n);
  plan.transform(Direction::Forward, x.data(), f.data());
  for (std::size_t k = 0; k < n; ++k) {
    const double want = k == 5 ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(f[k]), want, 1e-9) << "k=" << k;
  }
}

TEST(C2C, StridedMatchesContiguous) {
  const std::size_t n = 36, stride = 7;
  const auto x = random_signal(n * stride, 2);
  std::vector<Complex> want(n), got_buf(n * stride, Complex{-1, -1});
  std::vector<Complex> gathered(n);
  for (std::size_t j = 0; j < n; ++j) gathered[j] = x[j * stride];
  PlanC2C plan(n);
  plan.transform(Direction::Forward, gathered.data(), want.data());
  plan.transform_strided(Direction::Forward, x.data(),
                         static_cast<std::ptrdiff_t>(stride), got_buf.data(),
                         static_cast<std::ptrdiff_t>(stride));
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_LT(std::abs(got_buf[k * stride] - want[k]), 1e-12);
  }
}

TEST(C2C, BatchedMatchesLoop) {
  const std::size_t n = 32, count = 5;
  auto x = random_signal(n * count, 3);
  auto want = x;
  PlanC2C plan(n);
  for (std::size_t b = 0; b < count; ++b) {
    plan.transform(Direction::Forward, want.data() + b * n,
                   want.data() + b * n);
  }
  plan.transform_batch(Direction::Forward, x.data(), x.data(),
                       BatchLayout{.count = count, .stride = 1, .dist = n});
  EXPECT_LT(max_abs_diff(want, x), 1e-12);
}

TEST(C2C, BatchedStridedLayout) {
  // Lines of length 16 interleaved with stride 4 (like y-lines in a plane).
  const std::size_t n = 16, stride = 4;
  auto x = random_signal(n * stride, 4);
  auto want = x;
  PlanC2C plan(n);
  for (std::size_t b = 0; b < stride; ++b) {
    plan.transform_strided(Direction::Forward, want.data() + b,
                           static_cast<std::ptrdiff_t>(stride),
                           want.data() + b, static_cast<std::ptrdiff_t>(stride));
  }
  plan.transform_batch(Direction::Forward, x.data(), x.data(),
                       BatchLayout{.count = stride, .stride = stride, .dist = 1});
  EXPECT_LT(max_abs_diff(want, x), 1e-12);
}

// --- batched Stockham engine ---

// Engine-level check against the naive DFT: every supported radix alone and
// mixed, across batch widths that straddle the blocking boundaries.
TEST(Stockham, MatchesReferenceAcrossRadicesAndBatches) {
  // Pure radices 2/3/4/5/7 and mixed smooth sizes (including the paper's
  // 2^a*3^b family and 5- and 7-smooth lengths).
  const std::size_t sizes[] = {1,  2,  3,  4,  5,   7,   8,   9,  16, 25,
                               27, 35, 48, 49, 60,  72,  105, 96, 144, 210,
                               243, 360, 512, 576, 1155};
  for (const std::size_t n : sizes) {
    const std::size_t kb = batch_block_lines(n);
    const std::size_t batches[] = {1, kb - 1, kb, kb + 1, 5};
    StockhamEngine engine(n);
    for (const std::size_t batch : batches) {
      std::vector<Complex> data(n * batch), work(n * batch);
      std::vector<std::vector<Complex>> lines(batch);
      util::Rng rng(1000 + n + batch);
      for (std::size_t b = 0; b < batch; ++b) {
        lines[b].resize(n);
        for (std::size_t j = 0; j < n; ++j) {
          lines[b][j] = Complex{rng.gaussian(), rng.gaussian()};
          // Batch-innermost layout: element j of line b at [b + batch*j].
          (engine.prefers_work_input() ? work : data)[b + batch * j] =
              lines[b][j];
        }
      }
      for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
        auto d = data, w = work;
        engine.execute_batch(dir, d.data(), w.data(), batch);
        double scale = 0.0;
        for (std::size_t b = 0; b < batch; ++b) {
          std::vector<Complex> want(n);
          dft_reference(dir, n, lines[b].data(), want.data());
          for (std::size_t k = 0; k < n; ++k) {
            scale = std::max(scale, std::abs(want[k]));
          }
          for (std::size_t k = 0; k < n; ++k) {
            EXPECT_LT(std::abs(d[b + batch * k] - want[k]), 1e-12 * scale)
                << "n=" << n << " batch=" << batch << " b=" << b
                << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(Stockham, BatchedTransformMatchesPerLineStrided) {
  // transform_batch (gather -> batched engine -> scatter) against the
  // pre-change per-line strided path, smooth and Bluestein lengths.
  for (const std::size_t n : {48u, 97u}) {
    const std::size_t kb = batch_block_lines(n);
    for (const std::size_t count : {std::size_t{1}, kb - 1, kb, kb + 1,
                                    std::size_t{7}}) {
      // Lines adjacent in memory (dist 1), elements strided by count: the
      // z-line layout of a plane.
      auto x = random_signal(n * count, 40 + n + count);
      auto want = x;
      PlanC2C plan(n);
      for (std::size_t b = 0; b < count; ++b) {
        plan.transform_strided(Direction::Forward, want.data() + b,
                               static_cast<std::ptrdiff_t>(count),
                               want.data() + b,
                               static_cast<std::ptrdiff_t>(count));
      }
      plan.transform_batch(
          Direction::Forward, x.data(), x.data(),
          BatchLayout{.count = count, .stride = count, .dist = 1});
      double scale = 0.0;
      for (const auto& c : want) scale = std::max(scale, std::abs(c));
      EXPECT_LT(max_abs_diff(want, x), 1e-12 * scale)
          << "n=" << n << " count=" << count;
    }
  }
}

TEST(Stockham, GatherScatterRoundTripLeavesGapsUntouched) {
  // Lines covering only residues 0 and 1 of a stride-4 layout: a
  // forward+inverse round trip must recover the lines and never write the
  // sentinel gaps.
  const std::size_t n = 24, stride = 4, count = 2;
  const Complex sentinel{-7.0, 13.0};
  std::vector<Complex> buf(n * stride, sentinel);
  util::Rng rng(77);
  for (std::size_t b = 0; b < count; ++b) {
    for (std::size_t j = 0; j < n; ++j) {
      buf[b + j * stride] = Complex{rng.gaussian(), rng.gaussian()};
    }
  }
  const auto orig = buf;
  PlanC2C plan(n);
  const BatchLayout layout{.count = count, .stride = stride, .dist = 1};
  plan.transform_batch(Direction::Forward, buf.data(), buf.data(), layout);
  plan.transform_batch(Direction::Inverse, buf.data(), buf.data(), layout);
  for (std::size_t idx = 0; idx < buf.size(); ++idx) {
    if (idx % stride < count) {
      EXPECT_LT(std::abs(buf[idx] / static_cast<double>(n) - orig[idx]),
                1e-12)
          << idx;
    } else {
      EXPECT_EQ(buf[idx], sentinel) << idx;  // gap must be bit-identical
    }
  }
}

// The generic-radix combine of the recursive engine (now reached via
// transform_strided and Bluestein) against the reference, exercising the
// precomputed radix-r DFT rows for r in {5, 7, 11, 13, 17, 19}.
TEST(MixedRadix, GenericRadixMatchesReference) {
  for (const std::size_t n : {5u, 7u, 11u, 13u, 17u, 19u, 55u, 91u, 133u,
                              323u}) {
    const auto x = random_signal(n, 900 + n);
    std::vector<Complex> want(n), got(n);
    MixedRadixEngine engine(n);
    for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
      dft_reference(dir, n, x.data(), want.data());
      engine.execute(dir, x.data(), 1, got.data());
      EXPECT_LT(max_abs_diff(want, got), 1e-9 * static_cast<double>(n))
          << "n=" << n;
    }
  }
}

TEST(Bluestein, PrimeLengthMatchesReference) {
  for (const std::size_t n : {7u, 23u, 97u, 101u}) {
    const auto x = random_signal(n, 500 + n);
    std::vector<Complex> want(n), got(n);
    dft_reference(Direction::Forward, n, x.data(), want.data());
    BluesteinEngine engine(n);
    engine.execute(Direction::Forward, x.data(), 1, got.data());
    EXPECT_LT(max_abs_diff(want, got), 1e-8) << "n=" << n;
  }
}

TEST(PlanCache, ReturnsSharedInstance) {
  const auto a = get_plan(64);
  const auto b = get_plan(64);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(get_plan(128).get(), a.get());
}

// --- real transforms ---

class R2CLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2CLength, ForwardMatchesComplexDft) {
  const std::size_t n = GetParam();
  util::Rng rng(600 + n);
  std::vector<Real> x(n);
  for (auto& v : x) v = rng.gaussian();
  std::vector<Complex> full_in(n), want(n);
  for (std::size_t j = 0; j < n; ++j) full_in[j] = Complex{x[j], 0.0};
  dft_reference(Direction::Forward, n, full_in.data(), want.data());

  PlanR2C plan(n);
  std::vector<Complex> got(plan.spectrum_size());
  plan.forward(x.data(), got.data());
  for (std::size_t k = 0; k < plan.spectrum_size(); ++k) {
    EXPECT_LT(std::abs(got[k] - want[k]), 1e-9 * static_cast<double>(n))
        << "n=" << n << " k=" << k;
  }
}

TEST_P(R2CLength, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  util::Rng rng(700 + n);
  std::vector<Real> x(n), back(n);
  for (auto& v : x) v = rng.gaussian();
  PlanR2C plan(n);
  std::vector<Complex> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  plan.inverse(spec.data(), back.data());
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(back[j], x[j] * static_cast<double>(n),
                1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, R2CLength,
    ::testing::Values(2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 7, 9, 15),
    [](const ::testing::TestParamInfo<std::size_t>& pinfo) { return "n" + std::to_string(pinfo.param); });

TEST(R2C, NyquistAndMeanAreReal) {
  const std::size_t n = 32;
  util::Rng rng(8);
  std::vector<Real> x(n);
  for (auto& v : x) v = rng.gaussian();
  PlanR2C plan(n);
  std::vector<Complex> spec(plan.spectrum_size());
  plan.forward(x.data(), spec.data());
  EXPECT_NEAR(spec.front().imag(), 0.0, 1e-12);
  EXPECT_NEAR(spec.back().imag(), 0.0, 1e-12);
}

// --- 3-D transforms ---

TEST(Fft3d, C2CRoundTrip) {
  const Shape3 shape{6, 4, 8};
  auto x = random_signal(shape.volume(), 10);
  auto data = x;
  fft3d_c2c(Direction::Forward, shape, data.data());
  fft3d_c2c(Direction::Inverse, shape, data.data());
  const double scale = static_cast<double>(shape.volume());
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(data[i] / scale - x[i]));
  }
  EXPECT_LT(err, 1e-11);
}

TEST(Fft3d, C2CSingleModeIsDelta) {
  const Shape3 shape{8, 8, 8};
  std::vector<Complex> data(shape.volume());
  const int kx = 2, ky = 3, kz = 1;
  for (std::size_t k = 0; k < shape.nz; ++k) {
    for (std::size_t j = 0; j < shape.ny; ++j) {
      for (std::size_t i = 0; i < shape.nx; ++i) {
        const double phase =
            2.0 * std::numbers::pi *
            (kx * static_cast<double>(i) / shape.nx +
             ky * static_cast<double>(j) / shape.ny +
             kz * static_cast<double>(k) / shape.nz);
        data[i + shape.nx * (j + shape.ny * k)] =
            Complex{std::cos(phase), std::sin(phase)};
      }
    }
  }
  fft3d_c2c(Direction::Forward, shape, data.data());
  const std::size_t peak = kx + shape.nx * (ky + shape.ny * kz);
  for (std::size_t idx = 0; idx < data.size(); ++idx) {
    const double want =
        idx == peak ? static_cast<double>(shape.volume()) : 0.0;
    EXPECT_NEAR(std::abs(data[idx]), want, 1e-8);
  }
}

TEST(Fft3d, R2CRoundTrip) {
  const Shape3 shape{16, 6, 10};
  util::Rng rng(11);
  std::vector<Real> x(shape.volume());
  for (auto& v : x) v = rng.gaussian();
  std::vector<Complex> spec((shape.nx / 2 + 1) * shape.ny * shape.nz);
  std::vector<Real> back(shape.volume());
  fft3d_r2c(shape, x.data(), spec.data());
  fft3d_c2r(shape, spec.data(), back.data());
  const double scale = static_cast<double>(shape.volume());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i] / scale, x[i], 1e-11);
  }
}

TEST(Fft3d, R2CMatchesC2COnRealInput) {
  const Shape3 shape{8, 4, 6};
  util::Rng rng(12);
  std::vector<Real> x(shape.volume());
  for (auto& v : x) v = rng.gaussian();
  std::vector<Complex> full(shape.volume());
  for (std::size_t i = 0; i < x.size(); ++i) full[i] = Complex{x[i], 0.0};
  fft3d_c2c(Direction::Forward, shape, full.data());

  const std::size_t nxh = shape.nx / 2 + 1;
  std::vector<Complex> spec(nxh * shape.ny * shape.nz);
  fft3d_r2c(shape, x.data(), spec.data());
  for (std::size_t k = 0; k < shape.nz; ++k) {
    for (std::size_t j = 0; j < shape.ny; ++j) {
      for (std::size_t i = 0; i < nxh; ++i) {
        EXPECT_LT(std::abs(spec[i + nxh * (j + shape.ny * k)] -
                           full[i + shape.nx * (j + shape.ny * k)]),
                  1e-9);
      }
    }
  }
}

// Batched 3-D transforms against the pre-change per-line path (rebuilt here
// from the single-line primitives) and the r2c -> c2r identity.
class Fft3dBatched : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft3dBatched, R2CMatchesPerLinePathAndRoundTrips) {
  const std::size_t n = GetParam();
  const Shape3 shape{n, n, n};
  const std::size_t nxh = n / 2 + 1;
  util::Rng rng(5000 + n);
  std::vector<Real> x(shape.volume());
  for (auto& v : x) v = rng.gaussian();

  // Pre-change reference: per-line r2c in x, then per-line strided y and z.
  const auto prx = get_plan_r2c(n);
  const auto p = get_plan(n);
  std::vector<Complex> want(nxh * n * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      prx->forward(x.data() + n * (j + n * k), want.data() + nxh * (j + n * k));
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = want.data() + i + nxh * n * k;
      p->transform_strided(Direction::Forward, line,
                           static_cast<std::ptrdiff_t>(nxh), line,
                           static_cast<std::ptrdiff_t>(nxh));
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = want.data() + i + nxh * j;
      p->transform_strided(Direction::Forward, line,
                           static_cast<std::ptrdiff_t>(nxh * n), line,
                           static_cast<std::ptrdiff_t>(nxh * n));
    }
  }

  std::vector<Complex> got(nxh * n * n);
  fft3d_r2c(shape, x.data(), got.data());
  double scale = 0.0;
  for (const auto& c : want) scale = std::max(scale, std::abs(c));
  EXPECT_LT(max_abs_diff(want, got), 1e-12 * scale) << "n=" << n;

  // c2r(r2c(x)) == volume * x to the same relative tolerance.
  std::vector<Real> back(shape.volume());
  fft3d_c2r(shape, got.data(), back.data());
  const double vol = static_cast<double>(shape.volume());
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(back[i] / vol - x[i]));
    ref = std::max(ref, std::abs(x[i]));
  }
  EXPECT_LT(err, 1e-12 * ref * vol) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fft3dBatched,
                         ::testing::Values(16, 24, 32),
                         [](const ::testing::TestParamInfo<std::size_t>& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

// --- SIMD backend dispatch ---

// Restores the dispatched kernel backend (and with it the documented
// env/CPUID selection order) no matter how the test exits.
class BackendGuard {
 public:
  BackendGuard() : saved_(util::simd::active_backend()) {}
  ~BackendGuard() { util::simd::set_backend(saved_); }

 private:
  util::simd::Backend saved_;
};

// Runs a batched transform of `count` lines of length n under the given
// backend; plane layout (dist 1) to cover the fused gather-free path, and
// both directions to cover the inverse butterflies.
std::vector<Complex> batch_under_backend(util::simd::Backend backend,
                                         std::size_t n, std::size_t count,
                                         Direction dir) {
  util::simd::set_backend(backend);
  auto x = random_signal(n * count, 77);
  PlanC2C plan(n);
  plan.transform_batch(dir, x.data(), x.data(),
                       BatchLayout{.count = count, .stride = count, .dist = 1});
  return x;
}

TEST(Simd, BackendsAgreeAcrossRadicesAndBatches) {
  if (!util::simd::avx2_supported()) {
    GTEST_SKIP() << "no AVX2+FMA kernel on this build/CPU";
  }
  BackendGuard guard;
  // Lengths hit every dedicated butterfly (2/3/4), the generic direct-prime
  // rows (5, 7, 11), mixed schedules, and the Bluestein fallback (97, 101);
  // counts 1 and odd values exercise the scalar remainder tail of every
  // AVX2 sweep plus blocking-boundary block shapes.
  const std::size_t lengths[] = {2, 3, 4, 5, 7, 8, 9, 11, 12, 16, 25,
                                 27, 49, 60, 64, 97, 101, 121, 210, 256};
  const std::size_t counts[] = {1, 3, 7, 13, 33};
  for (const std::size_t n : lengths) {
    for (const std::size_t count : counts) {
      for (const Direction dir : {Direction::Forward, Direction::Inverse}) {
        const auto scalar =
            batch_under_backend(util::simd::Backend::Scalar, n, count, dir);
        const auto avx2 =
            batch_under_backend(util::simd::Backend::Avx2, n, count, dir);
        double scale = 1.0;
        for (const auto& c : scalar) scale = std::max(scale, std::abs(c));
        EXPECT_LT(max_abs_diff(scalar, avx2), 1e-12 * scale)
            << "n=" << n << " count=" << count
            << " dir=" << (dir == Direction::Forward ? "fwd" : "inv");
      }
    }
  }
}

TEST(Simd, BackendsAgreeOnReal3d) {
  if (!util::simd::avx2_supported()) {
    GTEST_SKIP() << "no AVX2+FMA kernel on this build/CPU";
  }
  BackendGuard guard;
  const std::size_t n = 24;
  const Shape3 shape{n, n, n};
  util::Rng rng(5);
  std::vector<Real> x(shape.volume());
  for (auto& v : x) v = rng.gaussian();
  std::vector<Complex> a((n / 2 + 1) * n * n), b(a.size());
  util::simd::set_backend(util::simd::Backend::Scalar);
  fft3d_r2c(shape, x.data(), a.data());
  util::simd::set_backend(util::simd::Backend::Avx2);
  fft3d_r2c(shape, x.data(), b.data());
  double scale = 0.0;
  for (const auto& c : a) scale = std::max(scale, std::abs(c));
  EXPECT_LT(max_abs_diff(a, b), 1e-12 * scale);
}

// --- worker-pool determinism ---

// The block partition and stripe->thread binding are pure functions of the
// loop bounds, so a pooled run must be bitwise identical to the inline one.
TEST(ThreadedBatch, PooledTransformsBitwiseMatchInline) {
  auto& pool = util::ThreadPool::global();
  const int prev = pool.threads();
  const std::size_t n = 64;
  const auto x = random_signal(n * n, 11);
  PlanC2C plan(n);
  const BatchLayout layout{.count = n, .stride = n, .dist = 1};

  pool.set_threads(1);
  auto inline_out = x;
  plan.transform_batch(Direction::Forward, inline_out.data(),
                       inline_out.data(), layout);
  pool.set_threads(4);
  auto pooled_out = x;
  plan.transform_batch(Direction::Forward, pooled_out.data(),
                       pooled_out.data(), layout);
  pool.set_threads(prev);

  for (std::size_t i = 0; i < inline_out.size(); ++i) {
    ASSERT_EQ(inline_out[i], pooled_out[i]) << "i=" << i;
  }
}

TEST(ThreadedBatch, PooledReal3dBitwiseMatchesInline) {
  auto& pool = util::ThreadPool::global();
  const int prev = pool.threads();
  const std::size_t n = 32;
  const Shape3 shape{n, n, n};
  util::Rng rng(9);
  std::vector<Real> x(shape.volume());
  for (auto& v : x) v = rng.gaussian();
  std::vector<Complex> a((n / 2 + 1) * n * n), b(a.size());

  pool.set_threads(1);
  fft3d_r2c(shape, x.data(), a.data());
  pool.set_threads(4);
  fft3d_r2c(shape, x.data(), b.data());
  pool.set_threads(prev);

  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "i=" << i;
  }
}

}  // namespace
}  // namespace psdns::fft
