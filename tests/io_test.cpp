#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "io/checkpoint.hpp"
#include "io/series.hpp"

namespace psdns::io {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct FileGuard {
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
  std::string path;
};

dns::SolverConfig small_config() {
  dns::SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  return cfg;
}

TEST(Checkpoint, RoundTripSameRankCount) {
  const FileGuard file(temp_path("psdns_ckp_same.bin"));
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(5, 3.0, 0.5);
    for (int s = 0; s < 3; ++s) a.step(0.01);
    save_checkpoint(file.path, a);

    dns::SlabSolver b(comm, small_config());
    const auto info = load_checkpoint(file.path, b);
    EXPECT_EQ(info.n, 16u);
    EXPECT_DOUBLE_EQ(info.time, a.time());
    EXPECT_EQ(info.step, 3);
    EXPECT_DOUBLE_EQ(b.time(), a.time());

    // Bitwise-identical state.
    for (int c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < a.modes().local_modes(); ++i) {
        EXPECT_EQ(b.uhat(c)[i], a.uhat(c)[i]);
      }
    }
  });
}

TEST(Checkpoint, RestartOnDifferentRankCount) {
  // A production restart may land on a different allocation size; the
  // global-layout file makes that transparent.
  const FileGuard file(temp_path("psdns_ckp_regrid.bin"));
  double energy2 = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(8, 3.0, 0.5);
    for (int s = 0; s < 2; ++s) a.step(0.01);
    save_checkpoint(file.path, a);
    a.step(0.01);  // continue the original run one more step
    const double e = a.diagnostics().energy;
    if (comm.rank() == 0) energy2 = e;
  });

  double energy4 = 0.0;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver b(comm, small_config());
    load_checkpoint(file.path, b);
    b.step(0.01);  // the restarted run takes the same step
    const double e = b.diagnostics().energy;
    if (comm.rank() == 0) energy4 = e;
  });
  // Reduction order differs across rank counts, so agreement is to
  // round-off rather than bitwise.
  EXPECT_NEAR(energy4, energy2, 1e-12);
}

TEST(Checkpoint, ContinuedRunMatchesUninterruptedRun) {
  const FileGuard file(temp_path("psdns_ckp_continue.bin"));
  double uninterrupted = 0.0, restarted = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(3, 3.0, 0.4);
    for (int s = 0; s < 6; ++s) a.step(0.01);
    const double e = a.diagnostics().energy;
    if (comm.rank() == 0) uninterrupted = e;
  });
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(3, 3.0, 0.4);
    for (int s = 0; s < 3; ++s) a.step(0.01);
    save_checkpoint(file.path, a);

    dns::SlabSolver b(comm, small_config());
    load_checkpoint(file.path, b);
    for (int s = 0; s < 3; ++s) b.step(0.01);
    EXPECT_EQ(b.step_count(), 6);
    const double e = b.diagnostics().energy;
    if (comm.rank() == 0) restarted = e;
  });
  EXPECT_DOUBLE_EQ(restarted, uninterrupted);
}

TEST(Checkpoint, PeekReadsHeaderOnly) {
  const FileGuard file(temp_path("psdns_ckp_peek.bin"));
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    a.step(0.05);
    save_checkpoint(file.path, a);
  });
  const auto info = peek_checkpoint(file.path);
  EXPECT_EQ(info.n, 16u);
  EXPECT_DOUBLE_EQ(info.time, 0.05);
  EXPECT_EQ(info.step, 1);
  EXPECT_DOUBLE_EQ(info.viscosity, 0.02);
}

TEST(Checkpoint, RejectsWrongGridSize) {
  const FileGuard file(temp_path("psdns_ckp_wrongn.bin"));
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    save_checkpoint(file.path, a);

    dns::SolverConfig bigger = small_config();
    bigger.n = 32;
    dns::SlabSolver b(comm, bigger);
    EXPECT_THROW(load_checkpoint(file.path, b), util::Error);
  });
}

TEST(Checkpoint, RejectsGarbageFile) {
  const FileGuard file(temp_path("psdns_ckp_garbage.bin"));
  std::FILE* f = std::fopen(file.path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  EXPECT_THROW(peek_checkpoint(file.path), util::Error);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(peek_checkpoint(temp_path("psdns_ckp_missing.bin")),
               util::Error);
}

TEST(Series, WritesAndReadsSpectrum) {
  const FileGuard file(temp_path("psdns_spectrum.csv"));
  const std::vector<double> spec{0.0, 1.5, 0.25, 0.0625};
  write_spectrum_csv(file.path, spec);
  const auto back = read_spectrum_csv(file.path);
  ASSERT_EQ(back.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], spec[i]);
  }
}

TEST(Series, WriterProducesHeaderAndRows) {
  const FileGuard file(temp_path("psdns_series.csv"));
  {
    SeriesWriter w(file.path);
    dns::Diagnostics d;
    d.energy = 0.5;
    d.dissipation = 0.1;
    w.append(0, 0.0, d);
    w.append(1, 0.01, d);
  }
  std::FILE* f = std::fopen(file.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_EQ(std::string(line).substr(0, 9), "step,time");
  int rows = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 2);
}

}  // namespace
}  // namespace psdns::io
