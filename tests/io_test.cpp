#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "obs/registry.hpp"
#include "resilience/fault.hpp"

namespace psdns::io {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct FileGuard {
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
  std::string path;
};

dns::SolverConfig small_config() {
  dns::SolverConfig cfg;
  cfg.n = 16;
  cfg.viscosity = 0.02;
  return cfg;
}

TEST(Checkpoint, RoundTripSameRankCount) {
  const FileGuard file(temp_path("psdns_ckp_same.bin"));
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(5, 3.0, 0.5);
    for (int s = 0; s < 3; ++s) a.step(0.01);
    save_checkpoint(file.path, a);

    dns::SlabSolver b(comm, small_config());
    const auto info = load_checkpoint(file.path, b);
    EXPECT_EQ(info.n, 16u);
    EXPECT_DOUBLE_EQ(info.time, a.time());
    EXPECT_EQ(info.step, 3);
    EXPECT_DOUBLE_EQ(b.time(), a.time());

    // Bitwise-identical state.
    for (int c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < a.modes().local_modes(); ++i) {
        EXPECT_EQ(b.uhat(c)[i], a.uhat(c)[i]);
      }
    }
  });
}

TEST(Checkpoint, RestartOnDifferentRankCount) {
  // A production restart may land on a different allocation size; the
  // global-layout file makes that transparent.
  const FileGuard file(temp_path("psdns_ckp_regrid.bin"));
  double energy2 = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(8, 3.0, 0.5);
    for (int s = 0; s < 2; ++s) a.step(0.01);
    save_checkpoint(file.path, a);
    a.step(0.01);  // continue the original run one more step
    const double e = a.diagnostics().energy;
    if (comm.rank() == 0) energy2 = e;
  });

  double energy4 = 0.0;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver b(comm, small_config());
    load_checkpoint(file.path, b);
    b.step(0.01);  // the restarted run takes the same step
    const double e = b.diagnostics().energy;
    if (comm.rank() == 0) energy4 = e;
  });
  // Reduction order differs across rank counts, so agreement is to
  // round-off rather than bitwise.
  EXPECT_NEAR(energy4, energy2, 1e-12);
}

TEST(Checkpoint, ContinuedRunMatchesUninterruptedRun) {
  const FileGuard file(temp_path("psdns_ckp_continue.bin"));
  double uninterrupted = 0.0, restarted = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(3, 3.0, 0.4);
    for (int s = 0; s < 6; ++s) a.step(0.01);
    const double e = a.diagnostics().energy;
    if (comm.rank() == 0) uninterrupted = e;
  });
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_isotropic(3, 3.0, 0.4);
    for (int s = 0; s < 3; ++s) a.step(0.01);
    save_checkpoint(file.path, a);

    dns::SlabSolver b(comm, small_config());
    load_checkpoint(file.path, b);
    for (int s = 0; s < 3; ++s) b.step(0.01);
    EXPECT_EQ(b.step_count(), 6);
    const double e = b.diagnostics().energy;
    if (comm.rank() == 0) restarted = e;
  });
  EXPECT_DOUBLE_EQ(restarted, uninterrupted);
}

TEST(Checkpoint, PeekReadsHeaderOnly) {
  const FileGuard file(temp_path("psdns_ckp_peek.bin"));
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    a.step(0.05);
    save_checkpoint(file.path, a);
  });
  const auto info = peek_checkpoint(file.path);
  EXPECT_EQ(info.n, 16u);
  EXPECT_DOUBLE_EQ(info.time, 0.05);
  EXPECT_EQ(info.step, 1);
  EXPECT_DOUBLE_EQ(info.viscosity, 0.02);
}

TEST(Checkpoint, RejectsWrongGridSize) {
  const FileGuard file(temp_path("psdns_ckp_wrongn.bin"));
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    save_checkpoint(file.path, a);

    dns::SolverConfig bigger = small_config();
    bigger.n = 32;
    dns::SlabSolver b(comm, bigger);
    EXPECT_THROW(load_checkpoint(file.path, b), util::Error);
  });
}

TEST(Checkpoint, RejectsGarbageFile) {
  const FileGuard file(temp_path("psdns_ckp_garbage.bin"));
  std::FILE* f = std::fopen(file.path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  EXPECT_THROW(peek_checkpoint(file.path), util::Error);
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(peek_checkpoint(temp_path("psdns_ckp_missing.bin")),
               util::Error);
}

TEST(Series, WritesAndReadsSpectrum) {
  const FileGuard file(temp_path("psdns_spectrum.csv"));
  const std::vector<double> spec{0.0, 1.5, 0.25, 0.0625};
  write_spectrum_csv(file.path, spec);
  const auto back = read_spectrum_csv(file.path);
  ASSERT_EQ(back.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i], spec[i]);
  }
}

TEST(Series, WriterProducesHeaderAndRows) {
  const FileGuard file(temp_path("psdns_series.csv"));
  {
    SeriesWriter w(file.path);
    dns::Diagnostics d;
    d.energy = 0.5;
    d.dissipation = 0.1;
    w.append(0, 0.0, d);
    w.append(1, 0.01, d);
  }
  std::FILE* f = std::fopen(file.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_EQ(std::string(line).substr(0, 9), "step,time");
  int rows = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 2);
}

// --- hardened checkpoints (format v3: per-section CRCs, atomic writes,
// --- rotation, typed errors) ---

// Header layout: 8 magic + 4 version + 8 n + 8 time + 8 step + 8 viscosity
// + 4 scalars + 4 crc.
constexpr std::uint64_t kHeaderBytes = 52;

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
}

/// Single-rank solver checkpoint after `steps` steps.
void make_checkpoint(const std::string& path, int steps = 1,
                     const CheckpointOptions& opts = {}) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    for (int s = 0; s < steps; ++s) a.step(0.01);
    save_checkpoint(path, a, opts);
  });
}

template <typename Fn>
CheckpointErrc thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const CheckpointError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected CheckpointError";
  return CheckpointErrc::Ok;
}

TEST(Checkpoint, TypedErrorNamesFileOnGridMismatch) {
  const FileGuard file(temp_path("psdns_ckp_gridmm.bin"));
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    save_checkpoint(file.path, a);

    dns::SolverConfig bigger = small_config();
    bigger.n = 32;
    dns::SlabSolver b(comm, bigger);
    try {
      load_checkpoint(file.path, b);
      FAIL() << "expected CheckpointError";
    } catch (const CheckpointError& e) {
      EXPECT_EQ(e.code(), CheckpointErrc::GridMismatch);
      EXPECT_EQ(e.path(), file.path);
      EXPECT_NE(std::string(e.what()).find(file.path), std::string::npos);
    }
  });
}

TEST(Checkpoint, BadMagicIsTyped) {
  const FileGuard file(temp_path("psdns_ckp_badmagic.bin"));
  make_checkpoint(file.path);
  flip_byte(file.path, 2);  // inside the magic
  EXPECT_EQ(thrown_code([&] { peek_checkpoint(file.path); }),
            CheckpointErrc::BadMagic);
}

TEST(Checkpoint, MissingFileIsTyped) {
  EXPECT_EQ(thrown_code([&] {
              peek_checkpoint(temp_path("psdns_ckp_nofile.bin"));
            }),
            CheckpointErrc::OpenFailed);
}

TEST(Checkpoint, BitFlipInEachSectionIsDetected) {
  const std::string clean = temp_path("psdns_ckp_flip_clean.bin");
  const std::string dirty = temp_path("psdns_ckp_flip_dirty.bin");
  const FileGuard g1(clean), g2(dirty);
  make_checkpoint(clean);

  const auto size = std::filesystem::file_size(clean);
  const std::uint64_t field_section = (size - kHeaderBytes) / 3;  // data + crc
  // One offset inside the header payload and one inside every field payload.
  std::vector<std::uint64_t> offsets{13};  // inside the grid-size word
  for (int k = 0; k < 3; ++k) {
    offsets.push_back(kHeaderBytes + k * field_section + 10);
  }
  const auto before = obs::registry().counter("ckpt.crc_failures");
  for (const auto offset : offsets) {
    std::filesystem::copy_file(
        clean, dirty, std::filesystem::copy_options::overwrite_existing);
    flip_byte(dirty, offset);
    EXPECT_EQ(thrown_code([&] { verify_checkpoint(dirty); }),
              CheckpointErrc::CrcMismatch)
        << "flip at offset " << offset;
  }
  // Field corruption is tallied (header corruption throws before the field
  // counter path, so expect at least the three field flips).
  EXPECT_GE(obs::registry().counter("ckpt.crc_failures") - before, 3);
}

TEST(Checkpoint, TruncationDetectedAtAnyOffset) {
  const std::string clean = temp_path("psdns_ckp_trunc_clean.bin");
  const std::string dirty = temp_path("psdns_ckp_trunc_dirty.bin");
  const FileGuard g1(clean), g2(dirty);
  make_checkpoint(clean);

  const auto size = std::filesystem::file_size(clean);
  for (const std::uint64_t cut :
       {std::uint64_t{4}, std::uint64_t{30}, kHeaderBytes + 1000,
        size / 2, size - 2}) {
    std::filesystem::copy_file(
        clean, dirty, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(dirty, cut);
    EXPECT_EQ(thrown_code([&] { verify_checkpoint(dirty); }),
              CheckpointErrc::Truncated)
        << "truncated to " << cut << " bytes";
  }
}

TEST(Checkpoint, TruncatedLoadThrowsOnEveryRank) {
  const FileGuard file(temp_path("psdns_ckp_trunc_load.bin"));
  make_checkpoint(file.path);
  std::filesystem::resize_file(file.path,
                               std::filesystem::file_size(file.path) / 2);
  std::atomic<int> caught{0};
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver b(comm, small_config());
    try {
      load_checkpoint(file.path, b);
    } catch (const CheckpointError& e) {
      // Rank 0 sees the root cause; the others the agreed code.
      EXPECT_EQ(e.code(), CheckpointErrc::Truncated);
      ++caught;
    }
  });
  EXPECT_EQ(caught.load(), 2);
}

TEST(Checkpoint, RotationKeepsPreviousCheckpoints) {
  const std::string path = temp_path("psdns_ckp_rotate.bin");
  const FileGuard g0(path), g1(path + ".1"), g2(path + ".2");
  CheckpointOptions opts;
  opts.keep = 2;
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    for (int s = 0; s < 3; ++s) {
      a.step(0.01);
      save_checkpoint(path, a, opts);
    }
  });
  EXPECT_EQ(verify_checkpoint(path).step, 3);
  EXPECT_EQ(verify_checkpoint(path + ".1").step, 2);
  EXPECT_FALSE(std::filesystem::exists(path + ".2"));  // keep=2 bounds disk
  EXPECT_EQ(checkpoint_chain(path).size(), 2u);
}

TEST(Checkpoint, StaleTmpFromCrashedWriteIsHarmless) {
  const std::string path = temp_path("psdns_ckp_staletmp.bin");
  const FileGuard g0(path), g1(path + ".tmp");
  make_checkpoint(path, 2);
  std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("partial write from a crashed attempt", f);
  std::fclose(f);

  EXPECT_EQ(verify_checkpoint(path).step, 2);  // the tmp is never read
  const auto recovery = recover_checkpoint_chain(path);
  ASSERT_TRUE(recovery.info.has_value());
  EXPECT_EQ(recovery.info->step, 2);
  EXPECT_EQ(recovery.discarded, 0);
}

TEST(Checkpoint, RecoverClosesRenameHoleInChain) {
  // A crash between rotation and the final rename leaves "<path>.1" but no
  // "<path>"; recovery must find the survivor and re-seat it.
  const std::string path = temp_path("psdns_ckp_hole.bin");
  const FileGuard g0(path), g1(path + ".1");
  make_checkpoint(path, 2);
  std::filesystem::rename(path, path + ".1");

  const auto recovery = recover_checkpoint_chain(path);
  ASSERT_TRUE(recovery.info.has_value());
  EXPECT_EQ(recovery.info->step, 2);
  EXPECT_EQ(recovery.discarded, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
  EXPECT_EQ(verify_checkpoint(path).step, 2);
}

TEST(Checkpoint, RecoverFallsBackToPreviousValid) {
  const std::string path = temp_path("psdns_ckp_fallback.bin");
  const FileGuard g0(path), g1(path + ".1");
  CheckpointOptions opts;
  opts.keep = 2;
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    a.step(0.01);
    save_checkpoint(path, a, opts);  // step 1 -> becomes ".1"
    a.step(0.01);
    save_checkpoint(path, a, opts);  // step 2 -> newest
  });
  flip_byte(path, kHeaderBytes + 100);  // corrupt the newest

  const auto before = obs::registry().counter("ckpt.discarded");
  const auto recovery = recover_checkpoint_chain(path);
  ASSERT_TRUE(recovery.info.has_value());
  EXPECT_EQ(recovery.info->step, 1);
  EXPECT_EQ(recovery.discarded, 1);
  EXPECT_EQ(obs::registry().counter("ckpt.discarded") - before, 1);
  // The survivor now sits at `path` and the chain is compact.
  EXPECT_EQ(verify_checkpoint(path).step, 1);
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
}

TEST(Checkpoint, RecoverRemovesEverythingWhenAllCorrupt) {
  const std::string path = temp_path("psdns_ckp_allbad.bin");
  const FileGuard g0(path), g1(path + ".1");
  CheckpointOptions opts;
  opts.keep = 2;
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    dns::SlabSolver a(comm, small_config());
    a.init_taylor_green();
    a.step(0.01);
    save_checkpoint(path, a, opts);
    a.step(0.01);
    save_checkpoint(path, a, opts);
  });
  flip_byte(path, kHeaderBytes + 50);
  flip_byte(path + ".1", kHeaderBytes + 50);

  const auto recovery = recover_checkpoint_chain(path);
  EXPECT_FALSE(recovery.info.has_value());
  EXPECT_EQ(recovery.discarded, 2);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));
}

TEST(Checkpoint, InjectedShortWriteIsRetriedToSuccess) {
  const FileGuard file(temp_path("psdns_ckp_shortwrite.bin"));
  const auto retries = obs::registry().counter("resilience.retries");
  const auto injected = obs::registry().counter("fault.injected");
  {
    resilience::ScopedPlan plan("io.ckpt.write@0=short_write");
    make_checkpoint(file.path, 1);
  }
  EXPECT_EQ(verify_checkpoint(file.path).step, 1);  // retry produced a
                                                    // clean file
  EXPECT_GE(obs::registry().counter("resilience.retries") - retries, 1);
  EXPECT_GE(obs::registry().counter("fault.injected") - injected, 1);
}

TEST(Checkpoint, InjectedSilentCorruptionCaughtByVerify) {
  const FileGuard file(temp_path("psdns_ckp_silent.bin"));
  {
    resilience::ScopedPlan plan("io.ckpt.write@0=bit_flip");
    make_checkpoint(file.path, 1);  // the write itself "succeeds"
  }
  EXPECT_EQ(thrown_code([&] { verify_checkpoint(file.path); }),
            CheckpointErrc::CrcMismatch);
}

TEST(Series, AppendModePreservesExistingRows) {
  const FileGuard file(temp_path("psdns_series_append.csv"));
  dns::Diagnostics d;
  d.energy = 0.5;
  {
    SeriesWriter w(file.path);
    w.append(0, 0.0, d);
    w.append(1, 0.01, d);
  }
  {
    SeriesWriter w(file.path, SeriesWriter::Mode::Append);
    w.append(2, 0.02, d);
  }
  std::FILE* f = std::fopen(file.path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  int headers = 0, rows = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::string(line).substr(0, 4) == "step") {
      ++headers;
    } else {
      ++rows;
    }
  }
  std::fclose(f);
  EXPECT_EQ(headers, 1);  // the append run must not repeat the header
  EXPECT_EQ(rows, 3);
}

TEST(Series, FailsLoudlyWhenFileCannotBeOpened) {
  const std::string path =
      temp_path("psdns_no_such_dir") + "/series.csv";
  try {
    SeriesWriter w(path);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace psdns::io
