#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "driver/campaign.hpp"
#include "gpu/copy.hpp"
#include "io/checkpoint.hpp"
#include "obs/registry.hpp"
#include "resilience/crc32c.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"

namespace psdns::resilience {
namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_chain(const std::string& path) {
  for (int k = 0; k < 8; ++k) {
    std::remove(io::rotated_checkpoint_name(path, k).c_str());
  }
  std::remove((path + ".tmp").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- CRC32C ---

TEST(Crc32c, MatchesKnownVectors) {
  EXPECT_EQ(crc32c("", 0), 0u);
  // The canonical CRC32C check value.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const auto whole = crc32c(data.data(), data.size());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                          data.size()}) {
    const auto part = crc32c(data.data() + cut, data.size() - cut,
                             crc32c(data.data(), cut));
    EXPECT_EQ(part, whole) << "cut at " << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<unsigned char> buf(1024, 0xAB);
  const auto clean = crc32c(buf.data(), buf.size());
  buf[512] ^= 0x01u;
  EXPECT_NE(crc32c(buf.data(), buf.size()), clean);
}

// --- FaultPlan parsing ---

TEST(FaultPlan, ParsesEntriesAndRoundTrips) {
  const auto plan = FaultPlan::parse(
      "comm.alltoall@12=throw; io.ckpt.write@0=short_write,"
      "io.ckpt.read@3=bit_flip");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].site, site::comm_alltoall);
  EXPECT_EQ(plan.faults[0].call, 12);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::Throw);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::ShortWrite);
  EXPECT_EQ(plan.faults[2].site, site::ckpt_read);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::BitFlip);
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
}

TEST(FaultPlan, EmptyStringIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ").empty());
}

TEST(FaultPlan, RejectsMalformedEntries) {
  EXPECT_THROW(FaultPlan::parse("comm.alltoall"), util::Error);
  EXPECT_THROW(FaultPlan::parse("comm.alltoall@3"), util::Error);
  EXPECT_THROW(FaultPlan::parse("comm.alltoall=throw"), util::Error);
  EXPECT_THROW(FaultPlan::parse("nosuch.site@0=throw"), util::Error);
  EXPECT_THROW(FaultPlan::parse("comm.alltoall@x=throw"), util::Error);
  EXPECT_THROW(FaultPlan::parse("comm.alltoall@-1=throw"), util::Error);
  EXPECT_THROW(FaultPlan::parse("comm.alltoall@0=explode"), util::Error);
}

TEST(FaultPlan, KnownSitesCoverTheWiredHooks) {
  const auto& sites = known_sites();
  EXPECT_EQ(sites.size(), 4u);
  for (const char* s : {site::comm_alltoall, site::ckpt_write,
                        site::ckpt_read, site::gpu_memcpy2d}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), s), sites.end()) << s;
  }
}

// --- injector semantics ---

TEST(Injector, FiresOnceAtExactCallIndex) {
  ScopedPlan plan("gpu.memcpy2d@2=throw");
  EXPECT_TRUE(armed());
  EXPECT_FALSE(poll(site::gpu_memcpy2d).has_value());  // call 0
  EXPECT_FALSE(poll(site::gpu_memcpy2d).has_value());  // call 1
  const auto hit = poll(site::gpu_memcpy2d);            // call 2
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, FaultKind::Throw);
  EXPECT_FALSE(poll(site::gpu_memcpy2d).has_value());  // one-shot
}

TEST(Injector, CountsPerSiteAndPerThread) {
  ScopedPlan plan("comm.alltoall@1=throw");
  // Other sites never interfere with the counter.
  EXPECT_FALSE(poll(site::ckpt_read).has_value());
  EXPECT_FALSE(poll(site::comm_alltoall).has_value());  // call 0
  // Each thread counts independently: both observe the fault at index 1.
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      if (poll(site::comm_alltoall)) ++fired;  // call 0 on this thread
      if (poll(site::comm_alltoall)) ++fired;  // call 1 -> fires
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 2);
}

TEST(Injector, DisarmedPollIsSilent) {
  disarm();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(poll(site::comm_alltoall).has_value());
  EXPECT_NO_THROW(maybe_throw(site::comm_alltoall));
}

TEST(Injector, MaybeThrowCarriesSiteAndCounts) {
  const auto before = obs::registry().counter("fault.injected");
  ScopedPlan plan("io.ckpt.read@0=throw");
  try {
    maybe_throw(site::ckpt_read);
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), site::ckpt_read);
    EXPECT_EQ(e.kind(), FaultKind::Throw);
    EXPECT_NE(std::string(e.what()).find("io.ckpt.read"), std::string::npos);
  }
  EXPECT_EQ(obs::registry().counter("fault.injected"), before + 1);
}

TEST(Injector, ArmFromEnvParsesThePlanVariable) {
  const char* prior = std::getenv("PSDNS_FAULT_PLAN");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("PSDNS_FAULT_PLAN", "io.ckpt.write@4=bit_flip", 1);
  EXPECT_TRUE(arm_from_env());
  EXPECT_TRUE(armed());
  disarm();
  if (prior != nullptr) {
    ::setenv("PSDNS_FAULT_PLAN", saved.c_str(), 1);
  } else {
    ::unsetenv("PSDNS_FAULT_PLAN");
    EXPECT_FALSE(arm_from_env());
  }
}

// --- retry policy ---

TEST(Retry, SucceedsAfterTransientFailures) {
  const auto before = obs::registry().counter("resilience.retries");
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_s = 0.0;
  int calls = 0;
  const int result = with_retry(policy, "test-op", [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(obs::registry().counter("resilience.retries"), before + 2);
}

TEST(Retry, ExhaustsBudgetAndRethrows) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_s = 0.0;
  int calls = 0;
  EXPECT_THROW(with_retry(policy, "doomed",
                          [&]() -> int {
                            ++calls;
                            throw std::runtime_error("permanent");
                          }),
               std::runtime_error);
  EXPECT_EQ(calls, 2);
}

TEST(Retry, BackoffIsDeterministicAndGrows) {
  RetryPolicy policy;  // base 1e-3, backoff 2.0, jitter 0.5
  const double d1 = backoff_delay_s(policy, 1);
  const double d2 = backoff_delay_s(policy, 2);
  const double d3 = backoff_delay_s(policy, 3);
  EXPECT_DOUBLE_EQ(d1, backoff_delay_s(policy, 1));  // same seed, same delay
  EXPECT_GE(d1, policy.base_delay_s);
  EXPECT_LT(d1, policy.base_delay_s * 1.5);
  EXPECT_GT(d2, d1);
  EXPECT_GT(d3, d2);
  RetryPolicy other = policy;
  other.seed = 123;
  EXPECT_NE(backoff_delay_s(other, 1), d1);  // jitter depends on the seed
}

// --- subsystem hooks ---

TEST(Hooks, AlltoallThrowsOnEveryRankThenRecovers) {
  ScopedPlan plan("comm.alltoall@0=throw");
  std::atomic<int> caught{0};
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    std::vector<int> send{comm.rank() * 10, comm.rank() * 10 + 1};
    std::vector<int> recv(2, -1);
    try {
      comm.alltoall(send.data(), recv.data(), 1);
      FAIL() << "expected InjectedFault on rank " << comm.rank();
    } catch (const InjectedFault& e) {
      EXPECT_EQ(e.site(), site::comm_alltoall);
      ++caught;
    }
    // The entry is one-shot per thread: the retried collective completes
    // and delivers correct data.
    comm.alltoall(send.data(), recv.data(), 1);
    EXPECT_EQ(recv[0], 0 + comm.rank());
    EXPECT_EQ(recv[1], 10 + comm.rank());
  });
  EXPECT_EQ(caught.load(), 2);
}

TEST(Hooks, AlltoallBitFlipCorruptsReceivedPayload) {
  ScopedPlan plan("comm.alltoall@0=bit_flip");
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    int send = 7;
    int recv = 0;
    comm.alltoall(&send, &recv, 1);
    // Bit 0x40 of the top byte flipped: 7 | 0x40000000 (little-endian).
    EXPECT_EQ(recv, 7 + 0x40000000);
    comm.alltoall(&send, &recv, 1);
    EXPECT_EQ(recv, 7);  // one-shot
  });
}

TEST(Hooks, Memcpy2dShortWriteBitFlipAndThrow) {
  ScopedPlan plan(
      "gpu.memcpy2d@0=short_write;gpu.memcpy2d@1=bit_flip;"
      "gpu.memcpy2d@2=throw");
  const std::vector<int> src{1, 2, 3, 4};
  std::vector<int> dst(4, 0);
  // short_write: only the first half of the rows arrive.
  gpu::memcpy2d(dst.data(), 2, src.data(), 2, 2, 2);
  EXPECT_EQ(dst, (std::vector<int>{1, 2, 0, 0}));
  // bit_flip: full copy, one bit of the destination corrupted.
  gpu::memcpy2d(dst.data(), 2, src.data(), 2, 2, 2);
  EXPECT_EQ(dst[0], 0);  // 1 ^ 1
  EXPECT_EQ(dst[3], 4);
  EXPECT_THROW(gpu::memcpy2d(dst.data(), 2, src.data(), 2, 2, 2),
               InjectedFault);
  // Plan exhausted: clean copies from here on.
  gpu::memcpy2d(dst.data(), 2, src.data(), 2, 2, 2);
  EXPECT_EQ(dst, src);
}

// --- the acceptance fault drill ---
//
// A two-allocation campaign with one injected fault per site must recover
// automatically and land on the same final step with spectral state
// bitwise-identical to the fault-free run. The CI fault-drill job feeds the
// plan through PSDNS_FAULT_PLAN; locally the same plan is armed directly.

driver::CampaignConfig drill_config(const std::string& ckp) {
  driver::CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.seed = 11;
  cfg.max_steps = 4;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 0;
  cfg.checkpoint_every = 2;
  cfg.checkpoint_keep = 2;
  cfg.checkpoint_path = ckp;
  return cfg;
}

driver::CampaignResult run_two_segments(const driver::CampaignConfig& cfg,
                                        int* recoveries = nullptr,
                                        int* discarded = nullptr) {
  driver::CampaignResult last;
  for (int segment = 0; segment < 2; ++segment) {
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      const auto r = driver::run_campaign_supervised(comm, cfg);
      if (comm.rank() == 0) {
        last = r;
        if (recoveries != nullptr) *recoveries += r.recoveries;
        if (discarded != nullptr) *discarded += r.checkpoints_discarded;
      }
    });
  }
  return last;
}

TEST(Drill, InjectedFaultsRecoverToBitwiseIdenticalState) {
  const std::string faulted_ckp = tmp("psdns_drill_faulted.ckp");
  const std::string clean_ckp = tmp("psdns_drill_clean.ckp");
  remove_chain(faulted_ckp);
  remove_chain(clean_ckp);

  // One fault per injection site. comm/gpu faults abort a segment early in
  // allocation 1; the write fault exercises the retry path on the first
  // checkpoint; the read fault corrupts the restart load of allocation 2
  // (read op 0 is the supervisor's entry verification, op 1 the load).
  const std::string plan_text =
      "comm.alltoall@6=throw;gpu.memcpy2d@9=throw;"
      "io.ckpt.write@0=short_write;io.ckpt.read@1=bit_flip";
  const auto injected_before = obs::registry().counter("fault.injected");

  // Honor the CI job's PSDNS_FAULT_PLAN when present so the env pathway is
  // exercised end to end; otherwise arm the canonical drill plan.
  if (!arm_from_env()) arm(FaultPlan::parse(plan_text));
  int recoveries = 0;
  int discarded = 0;
  const auto faulted =
      run_two_segments(drill_config(faulted_ckp), &recoveries, &discarded);
  disarm();

  const auto injected =
      obs::registry().counter("fault.injected") - injected_before;
  EXPECT_GE(injected, 3) << "drill plan did not fire";
  EXPECT_GE(recoveries, 1);

  const auto clean = run_two_segments(drill_config(clean_ckp));

  // Same final step, same final time, bitwise-identical spectral state.
  const auto faulted_info = io::verify_checkpoint(faulted_ckp);
  const auto clean_info = io::verify_checkpoint(clean_ckp);
  EXPECT_EQ(faulted_info.step, clean_info.step);
  EXPECT_EQ(faulted_info.step, 8);
  EXPECT_DOUBLE_EQ(faulted_info.time, clean_info.time);
  EXPECT_DOUBLE_EQ(faulted.final_diagnostics.energy,
                   clean.final_diagnostics.energy);
  EXPECT_EQ(read_file(faulted_ckp), read_file(clean_ckp));

  remove_chain(faulted_ckp);
  remove_chain(clean_ckp);
}

}  // namespace
}  // namespace psdns::resilience
