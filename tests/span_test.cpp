// Causal span tracing (obs/span.hpp), critical-path / overlap analysis
// (obs/critical_path.hpp) and the perf-regression diff (obs/perfdiff.hpp).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "comm/communicator.hpp"
#include "obs/bench_report.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"
#include "obs/perfdiff.hpp"
#include "obs/span.hpp"
#include "pipeline/async_fft.hpp"
#include "pipeline/dns_step_model.hpp"

namespace {

using namespace psdns;
using obs::SpanKind;
using obs::SpanRecord;
using obs::SpanTrace;
using obs::TraceSpan;

/// Every test starts with tracing off, default capacity, empty buffers.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::set_trace_capacity(1 << 16);
    obs::set_trace_file("");
    obs::clear_trace();
  }
  void TearDown() override { SetUp(); }
};

const SpanRecord* find_span(const SpanTrace& trace, const std::string& name) {
  for (const auto& s : trace.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(SpanTest, DisabledTracingRecordsNothing) {
  {
    TraceSpan outer("outer", SpanKind::Compute);
    EXPECT_EQ(outer.id(), 0u);
    EXPECT_EQ(obs::current_span(), 0u);
  }
  const auto trace = obs::collect_trace();
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.edges.empty());
}

TEST_F(SpanTest, NestingRecordsParentsAndTiming) {
  obs::set_tracing(true);
  {
    TraceSpan outer("outer", SpanKind::Compute);
    EXPECT_NE(outer.id(), 0u);
    EXPECT_EQ(obs::current_span(), outer.id());
    {
      TraceSpan inner("inner", SpanKind::Transfer);
      EXPECT_EQ(obs::current_span(), inner.id());
    }
    EXPECT_EQ(obs::current_span(), outer.id());
  }
  const auto trace = obs::collect_trace();
  ASSERT_EQ(trace.spans.size(), 2u);
  const auto* outer = find_span(trace, "outer");
  const auto* inner = find_span(trace, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->kind, SpanKind::Compute);
  EXPECT_EQ(inner->kind, SpanKind::Transfer);
  // The inner span nests temporally inside the outer one.
  EXPECT_LE(outer->start_s, inner->start_s);
  EXPECT_LE(inner->end_s, outer->end_s);
  EXPECT_GE(inner->duration(), 0.0);
}

TEST_F(SpanTest, EndIsIdempotentAndEarly) {
  obs::set_tracing(true);
  TraceSpan span("early", SpanKind::Other);
  span.end();
  span.end();  // no-op
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(obs::current_span(), 0u);
  const auto trace = obs::collect_trace();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].name, "early");
}

TEST_F(SpanTest, RingWrapKeepsNewestAndCountsDropped) {
  obs::set_trace_capacity(8);
  obs::set_tracing(true);
  for (int i = 0; i < 13; ++i) {
    TraceSpan span("s" + std::to_string(i), SpanKind::Compute);
  }
  const auto trace = obs::collect_trace();
  EXPECT_EQ(trace.spans.size(), 8u);
  EXPECT_EQ(trace.dropped, 5);
  // The oldest five were overwritten; the newest survive in order.
  EXPECT_EQ(find_span(trace, "s4"), nullptr);
  ASSERT_NE(find_span(trace, "s5"), nullptr);
  ASSERT_NE(find_span(trace, "s12"), nullptr);
}

TEST_F(SpanTest, ReenablingClearsAndRestartsClock) {
  obs::set_tracing(true);
  { TraceSpan span("first", SpanKind::Compute); }
  obs::set_tracing(true);  // restart
  { TraceSpan span("second", SpanKind::Compute); }
  const auto trace = obs::collect_trace();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].name, "second");
}

TEST_F(SpanTest, FlowEdgeTiesEmitterToConsumer) {
  obs::set_tracing(true);
  const obs::FlowId flow = obs::new_flow();
  ASSERT_NE(flow, 0u);
  obs::SpanId src = 0, dst = 0;
  {
    TraceSpan post("post", SpanKind::Transfer);
    src = post.id();
    obs::flow_emit(flow);
  }
  {
    TraceSpan wait("wait", SpanKind::Transfer);
    dst = wait.id();
    obs::flow_consume(flow);
    obs::flow_consume(obs::new_flow());  // never emitted: silent no-op
  }
  const auto trace = obs::collect_trace();
  ASSERT_EQ(trace.edges.size(), 1u);
  EXPECT_EQ(trace.edges[0].flow, flow);
  EXPECT_EQ(trace.edges[0].src, src);
  EXPECT_EQ(trace.edges[0].dst, dst);
}

TEST_F(SpanTest, RecordSpanAppendsExplicitIntervalsAndLinks) {
  // The campaign service's queue-wait span: no single thread was inside
  // the interval, so it is recorded after the fact with explicit
  // trace-clock times and linked to its neighbours by id.
  obs::set_tracing(true);
  const double t0 = obs::trace_clock();
  obs::SpanId admit = 0;
  {
    TraceSpan span("svc.admit", SpanKind::Other);
    admit = span.id();
  }
  const double t1 = obs::trace_clock();
  EXPECT_GE(t1, t0);
  const obs::SpanId queue =
      obs::record_span("svc.queue", SpanKind::Other, t0, t1);
  ASSERT_NE(queue, 0u);
  obs::link_spans(admit, queue);
  obs::link_spans(0, queue);  // zero endpoint: silent no-op

  const auto trace = obs::collect_trace();
  const auto* rec = find_span(trace, "svc.queue");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->id, queue);
  EXPECT_DOUBLE_EQ(rec->start_s, t0);
  EXPECT_DOUBLE_EQ(rec->end_s, t1);
  ASSERT_EQ(trace.edges.size(), 1u);
  EXPECT_EQ(trace.edges[0].src, admit);
  EXPECT_EQ(trace.edges[0].dst, queue);
}

TEST_F(SpanTest, RecordSpanAndClockAreNoOpsWhileTracingIsOff) {
  EXPECT_DOUBLE_EQ(obs::trace_clock(), 0.0);
  EXPECT_EQ(obs::record_span("off", SpanKind::Other, 0.0, 1.0), 0u);
  obs::link_spans(1, 2);  // ids from a disabled world: nothing to link
  const auto trace = obs::collect_trace();
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(trace.edges.empty());
}

TEST_F(SpanTest, SelfEdgesAreNotRecorded) {
  obs::set_tracing(true);
  const obs::FlowId flow = obs::new_flow();
  {
    TraceSpan span("both", SpanKind::Other);
    obs::flow_emit(flow);
    obs::flow_consume(flow);  // same span: dropped
  }
  EXPECT_TRUE(obs::collect_trace().edges.empty());
}

TEST_F(SpanTest, AsyncFftPostWaitProducesFlowEdges) {
  obs::set_tracing(true);
  comm::run_ranks(2, [](comm::Communicator& comm) {
    const std::size_t n = 8;
    pipeline::AsyncFft3d fft(comm, n, 2, 1);
    std::vector<fft::Complex> spec(fft.spectral_elems());
    std::vector<fft::Real> phys(fft.physical_elems());
    spec[0] = fft::Complex{1.0, 0.0};
    const fft::Complex* sp = spec.data();
    fft::Real* ph = phys.data();
    fft.inverse(std::span<const fft::Complex* const>(&sp, 1),
                std::span<fft::Real* const>(&ph, 1));
  });
  const auto trace = obs::collect_trace();
  ASSERT_NE(find_span(trace, "async.pack"), nullptr);
  ASSERT_NE(find_span(trace, "async.unpack"), nullptr);
  ASSERT_NE(find_span(trace, "async.fft_y"), nullptr);
  // Each rank posts 2 groups, each with a post->wait flow edge, plus the
  // alltoall cross-rank edges.
  int post_wait_edges = 0;
  for (const auto& e : trace.edges) {
    const SpanRecord *src = nullptr, *dst = nullptr;
    for (const auto& s : trace.spans) {
      if (s.id == e.src) src = &s;
      if (s.id == e.dst) dst = &s;
    }
    ASSERT_NE(src, nullptr);
    ASSERT_NE(dst, nullptr);
    if (src->name == "async.pack" && dst->name == "async.unpack") {
      EXPECT_EQ(src->rank, dst->rank);  // post/wait is a same-rank edge
      ++post_wait_edges;
    }
  }
  EXPECT_EQ(post_wait_edges, 4);  // 2 ranks x 2 groups
}

TEST_F(SpanTest, AlltoallRecordsCrossRankEdges) {
  obs::set_tracing(true);
  comm::run_ranks(2, [](comm::Communicator& comm) {
    std::vector<int> send{comm.rank(), comm.rank()};
    std::vector<int> recv(2, -1);
    comm.alltoall(send.data(), recv.data(), 1);
  });
  const auto trace = obs::collect_trace();
  // One comm.alltoall span per rank, tagged with its rank.
  int rank0 = 0, rank1 = 0;
  for (const auto& s : trace.spans) {
    if (s.name != "comm.alltoall") continue;
    if (s.rank == 0) ++rank0;
    if (s.rank == 1) ++rank1;
  }
  EXPECT_EQ(rank0, 1);
  EXPECT_EQ(rank1, 1);
  // Each rank consumes the other's flow: two cross-rank edges.
  ASSERT_EQ(trace.edges.size(), 2u);
  for (const auto& e : trace.edges) {
    const SpanRecord *src = nullptr, *dst = nullptr;
    for (const auto& s : trace.spans) {
      if (s.id == e.src) src = &s;
      if (s.id == e.dst) dst = &s;
    }
    ASSERT_NE(src, nullptr);
    ASSERT_NE(dst, nullptr);
    EXPECT_NE(src->rank, dst->rank);
  }
}

TEST_F(SpanTest, WritesChromeTraceFileWhenConfigured) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "psdns_span_trace.json")
          .string();
  obs::set_trace_file(path);
  obs::set_tracing(true);
  { TraceSpan span("traced", SpanKind::Io); }
  obs::write_trace_if_configured();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  // The repo emits the JSON-array flavor of the Chrome trace format.
  const auto doc = obs::json_parse(ss.str());
  ASSERT_TRUE(doc.is_array());
  bool found = false;
  for (const auto& ev : doc.array) {
    if (ev.at("name").string == "traced") found = true;
  }
  EXPECT_TRUE(found);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- env gating

TEST_F(SpanTest, EnvEnablesAndDisables) {
  ::setenv("PSDNS_TRACE", "on", 1);
  obs::init_tracing_from_env();
  EXPECT_TRUE(obs::tracing());
  ::setenv("PSDNS_TRACE", "0", 1);
  obs::init_tracing_from_env();
  EXPECT_FALSE(obs::tracing());
  ::unsetenv("PSDNS_TRACE");
}

TEST_F(SpanTest, UnknownEnvValueThrows) {
  ::setenv("PSDNS_TRACE", "maybe", 1);
  EXPECT_THROW(obs::init_tracing_from_env(), std::exception);
  ::unsetenv("PSDNS_TRACE");
}

TEST_F(SpanTest, ProgrammaticSettingWinsOverEnv) {
  // Same precedence as PSDNS_LOG_*: the env is applied (lazily, once); a
  // later programmatic call overrides it because it runs after.
  ::setenv("PSDNS_TRACE", "off", 1);
  obs::init_tracing_from_env();
  obs::set_tracing(true);
  EXPECT_TRUE(obs::tracing());
  ::unsetenv("PSDNS_TRACE");
}

TEST_F(SpanTest, EnvTraceFileIsApplied) {
  ::setenv("PSDNS_TRACE_FILE", "/tmp/psdns_env_trace.json", 1);
  obs::init_tracing_from_env();
  EXPECT_EQ(obs::trace_file(), "/tmp/psdns_env_trace.json");
  ::unsetenv("PSDNS_TRACE_FILE");
  obs::set_trace_file("");
}

// ------------------------------------------------- critical path and overlap

SpanRecord make_span(obs::SpanId id, const std::string& name, SpanKind kind,
                     int thread, int rank, double start, double end) {
  SpanRecord s;
  s.id = id;
  s.name = name;
  s.kind = kind;
  s.thread = thread;
  s.rank = rank;
  s.start_s = start;
  s.end_s = end;
  return s;
}

TEST(CriticalPathTest, FollowsFlowEdgesAcrossThreads) {
  SpanTrace trace;
  trace.spans.push_back(
      make_span(1, "fft", SpanKind::Compute, 1, 0, 0.0, 4.0));
  trace.spans.push_back(make_span(2, "a2a", SpanKind::Comm, 2, 0, 4.0, 9.0));
  trace.spans.push_back(
      make_span(3, "unpack", SpanKind::Transfer, 1, 0, 9.0, 10.0));
  // A concurrent distractor that is not on the critical path.
  trace.spans.push_back(
      make_span(4, "side", SpanKind::Compute, 3, 0, 0.0, 2.0));
  trace.edges.push_back({10, 1, 2});
  trace.edges.push_back({11, 2, 3});

  const auto path = obs::critical_path(trace);
  ASSERT_EQ(path.spans.size(), 3u);
  EXPECT_EQ(path.spans[0].id, 1u);
  EXPECT_EQ(path.spans[1].id, 2u);
  EXPECT_EQ(path.spans[2].id, 3u);
  EXPECT_DOUBLE_EQ(path.path_seconds, 10.0);
  EXPECT_DOUBLE_EQ(path.attribution.compute, 4.0);
  EXPECT_DOUBLE_EQ(path.attribution.comm, 5.0);
  EXPECT_DOUBLE_EQ(path.attribution.transfer, 1.0);
  EXPECT_DOUBLE_EQ(path.attribution.idle, 0.0);
}

TEST(CriticalPathTest, SameLaneOrderAndGapsBecomeIdle) {
  SpanTrace trace;
  trace.spans.push_back(
      make_span(1, "a", SpanKind::Compute, 1, 0, 0.0, 1.0));
  trace.spans.push_back(make_span(2, "b", SpanKind::Comm, 1, 0, 3.0, 5.0));
  const auto path = obs::critical_path(trace);
  ASSERT_EQ(path.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(path.path_seconds, 3.0);  // durations only
  EXPECT_DOUBLE_EQ(path.attribution.idle, 2.0);  // the [1,3] gap
  EXPECT_DOUBLE_EQ(path.attribution.total, 5.0);
}

TEST(CriticalPathTest, ParentSpansAreExcludedFromLeaves) {
  SpanTrace trace;
  auto phase = make_span(1, "phase", SpanKind::Other, 1, 0, 0.0, 10.0);
  auto leaf = make_span(2, "work", SpanKind::Compute, 1, 0, 1.0, 9.0);
  leaf.parent = 1;
  trace.spans.push_back(phase);
  trace.spans.push_back(leaf);
  const auto path = obs::critical_path(trace);
  ASSERT_EQ(path.spans.size(), 1u);
  EXPECT_EQ(path.spans[0].id, 2u);
  EXPECT_DOUBLE_EQ(path.path_seconds, 8.0);
}

TEST(CriticalPathTest, ConcurrentFlowEdgesDoNotCycle) {
  // An all-to-all records edges both ways between its (concurrent) rank
  // spans; the DAG walk must stay acyclic and finite.
  SpanTrace trace;
  trace.spans.push_back(make_span(1, "a2a", SpanKind::Comm, 1, 0, 0.0, 2.0));
  trace.spans.push_back(make_span(2, "a2a", SpanKind::Comm, 2, 1, 0.0, 2.1));
  trace.edges.push_back({10, 1, 2});
  trace.edges.push_back({11, 2, 1});
  const auto path = obs::critical_path(trace);
  ASSERT_EQ(path.spans.size(), 2u);
  EXPECT_NEAR(path.path_seconds, 4.1, 1e-12);
}

TEST(OverlapTest, SerializedSpansHaveZeroEfficiency) {
  SpanTrace trace;
  trace.spans.push_back(
      make_span(1, "fft", SpanKind::Compute, 1, 0, 0.0, 1.0));
  trace.spans.push_back(make_span(2, "a2a", SpanKind::Comm, 1, 0, 1.0, 2.0));
  const auto ov = obs::overlap_stats(trace);
  EXPECT_DOUBLE_EQ(ov.hidden, 0.0);
  EXPECT_DOUBLE_EQ(ov.exposed, 1.0);
  EXPECT_DOUBLE_EQ(ov.overlap_efficiency, 0.0);
}

TEST(OverlapTest, FullyOverlappedSpansReachEfficiencyOne) {
  SpanTrace trace;
  trace.spans.push_back(
      make_span(1, "fft", SpanKind::Compute, 1, 0, 0.0, 2.0));
  trace.spans.push_back(make_span(2, "a2a", SpanKind::Comm, 2, 0, 0.0, 2.0));
  const auto ov = obs::overlap_stats(trace);
  EXPECT_DOUBLE_EQ(ov.hidden, 2.0);
  EXPECT_DOUBLE_EQ(ov.overlap_efficiency, 1.0);
}

TEST(OverlapTest, CrossRankCoincidenceDoesNotCount) {
  SpanTrace trace;
  trace.spans.push_back(
      make_span(1, "fft", SpanKind::Compute, 1, 0, 0.0, 1.0));
  trace.spans.push_back(make_span(2, "a2a", SpanKind::Comm, 2, 1, 0.0, 1.0));
  const auto ov = obs::overlap_stats(trace);
  EXPECT_DOUBLE_EQ(ov.hidden, 0.0);
  EXPECT_DOUBLE_EQ(ov.overlap_efficiency, 0.0);
}

/// Acceptance: on the pipeline step model, the Fig.-4 batched schedule
/// hides > 0.8 of the achievable overlap while the serialized ablation
/// hides nothing. Config A (1 GPU per rank) keeps per-rank attribution
/// exact; the ablation also serializes the unpack (the zero-copy kernel
/// would otherwise overlap by design).
TEST(OverlapTest, StepModelAsyncBeatsSerializedAblation) {
  const pipeline::DnsStepModel model;
  pipeline::PipelineConfig cfg;
  cfg.n = 3072;
  cfg.nodes = 16;
  cfg.pencils = 8;
  cfg.pencils_per_a2a = 1;
  cfg.mpi = pipeline::MpiConfig::A;

  cfg.async = true;
  const auto async = model.simulate_gpu_step(cfg);
  EXPECT_GT(async.overlap_efficiency, 0.8);

  cfg.async = false;
  cfg.unpack_method = gpu::CopyMethod::Memcpy2DAsync;
  const auto sync = model.simulate_gpu_step(cfg);
  EXPECT_NEAR(sync.overlap_efficiency, 0.0, 1e-9);

  // The schedule that hides more finishes sooner.
  EXPECT_LT(async.seconds, sync.seconds);
}

// ------------------------------------------------------------------ perfdiff

std::string report_json(const std::vector<std::pair<std::string, double>>&
                            metrics,
                        const std::string& name = "demo") {
  obs::BenchReport report(name);
  for (const auto& [k, v] : metrics) report.metric(k, v);
  return report.to_json();
}

TEST(PerfDiffTest, IdenticalReportsPass) {
  const std::string doc = report_json(
      {{"step_seconds.case", 1.25}, {"best_speedup.case", 4.0}});
  const auto result = obs::perf_diff(doc, doc);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.missing, 0);
  EXPECT_EQ(result.deltas.size(), 2u);
}

TEST(PerfDiffTest, TwentyPercentSlowdownFails) {
  const auto base = report_json({{"step_seconds.case", 10.0}});
  const auto curr = report_json({{"step_seconds.case", 12.0}});
  const auto result = obs::perf_diff(base, curr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_NEAR(result.deltas[0].worsening, 0.2, 1e-12);
}

TEST(PerfDiffTest, HigherIsBetterKeysInvertDirection) {
  const auto base =
      report_json({{"best_speedup.case", 5.0}, {"bandwidth.x", 10.0}});
  const auto lower =
      report_json({{"best_speedup.case", 4.0}, {"bandwidth.x", 12.0}});
  const auto result = obs::perf_diff(base, lower);
  EXPECT_EQ(result.regressions, 1);  // the dropped speedup
  EXPECT_EQ(result.improvements, 1);  // the bandwidth gain
  for (const auto& d : result.deltas) {
    EXPECT_EQ(d.direction, obs::MetricDirection::HigherIsBetter);
  }
}

TEST(PerfDiffTest, ToleranceAndAbsFloorAbsorbNoise) {
  const auto base = report_json(
      {{"step_seconds.case", 10.0}, {"tiny_seconds", 1e-9}});
  const auto curr = report_json(
      {{"step_seconds.case", 10.4}, {"tiny_seconds", 1.5e-9}});
  // 4% slower is inside the 5% tolerance; the 50% tiny-metric jump is
  // below the absolute floor.
  const auto result = obs::perf_diff(base, curr);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
}

TEST(PerfDiffTest, MissingMetricFailsUnlessAllowed) {
  const auto base =
      report_json({{"step_seconds.a", 1.0}, {"step_seconds.b", 2.0}});
  const auto curr = report_json({{"step_seconds.a", 1.0}});
  const auto result = obs::perf_diff(base, curr);
  EXPECT_EQ(result.missing, 1);
  EXPECT_FALSE(result.ok());
  obs::PerfDiffOptions lax;
  lax.fail_on_missing = false;
  EXPECT_TRUE(obs::perf_diff(report_json({{"step_seconds.a", 1.0},
                                          {"step_seconds.b", 2.0}}),
                             report_json({{"step_seconds.a", 1.0}}), lax)
                  .ok(lax));
}

TEST(PerfDiffTest, AddedMetricsAreInformational) {
  const auto base = report_json({{"step_seconds.a", 1.0}});
  const auto curr =
      report_json({{"step_seconds.a", 1.0}, {"step_seconds.new", 9.0}});
  const auto result = obs::perf_diff(base, curr);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.added, 1);
}

TEST(PerfDiffTest, MismatchedReportNamesThrow) {
  EXPECT_THROW(obs::perf_diff(report_json({{"m", 1.0}}, "alpha"),
                              report_json({{"m", 1.0}}, "beta")),
               std::exception);
}

TEST(PerfDiffTest, FormatReportMentionsRegressions) {
  const auto base = report_json({{"step_seconds.case", 10.0}});
  const auto curr = report_json({{"step_seconds.case", 13.0}});
  const auto result = obs::perf_diff(base, curr);
  const std::string text = obs::format_report(result, {});
  EXPECT_NE(text.find("step_seconds.case"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  // A regressing diff also prints both run manifests (schema-v2 reports
  // embed them), so the gate log answers "what changed between runs".
  EXPECT_NE(text.find("baseline run: sha="), std::string::npos);
  EXPECT_NE(text.find("current run:  sha="), std::string::npos);
}

TEST(PerfDiffTest, SchemaV1BaselineStillCompares) {
  // Committed baselines predate the manifest; they carry no manifest and
  // schema_version 1, and must keep diffing against v2 reports.
  const std::string v1 =
      "{\"name\": \"demo\", \"schema_version\": 1, \"git_sha\": \"x\","
      " \"metadata\": {}, \"metrics\": {\"step_seconds.case\": 10.0}}";
  const auto curr = report_json({{"step_seconds.case", 10.1}});
  const auto result = obs::perf_diff(v1, curr);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.baseline_manifest.empty());
  EXPECT_FALSE(result.current_manifest.empty());
}

TEST(PerfDiffTest, JsonOutputIsMachineReadable) {
  const auto base = report_json({{"step_seconds.case", 10.0}});
  const auto curr = report_json({{"step_seconds.case", 13.0}});
  const auto result = obs::perf_diff(base, curr);
  const auto doc = obs::json_parse(obs::to_json(result));
  EXPECT_EQ(doc.at("name").string, "demo");
  EXPECT_FALSE(doc.at("ok").boolean);
  EXPECT_DOUBLE_EQ(doc.at("regressions").number, 1.0);
  ASSERT_EQ(doc.at("metrics").array.size(), 1u);
  const auto& d = doc.at("metrics").array[0];
  EXPECT_EQ(d.at("key").string, "step_seconds.case");
  EXPECT_EQ(d.at("status").string, "regression");
  EXPECT_NEAR(d.at("worsening").number, 0.3, 1e-12);
  EXPECT_NE(doc.at("current_manifest").string.find("sha="),
            std::string::npos);
}

TEST(PerfDiffTest, DirectionInference) {
  using obs::MetricDirection;
  EXPECT_EQ(obs::infer_direction("step_seconds.x"),
            MetricDirection::LowerIsBetter);
  EXPECT_EQ(obs::infer_direction("best_speedup.x"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(obs::infer_direction("overlap_efficiency.case"),
            MetricDirection::HigherIsBetter);
  EXPECT_EQ(obs::infer_direction("a2a_bandwidth_gb"),
            MetricDirection::HigherIsBetter);
}

}  // namespace
