#include <gtest/gtest.h>
#include <algorithm>

#include "model/geometry.hpp"
#include "model/memory.hpp"
#include "model/paper.hpp"
#include "model/scaling.hpp"
#include "util/check.hpp"

namespace psdns::model {
namespace {

TEST(Geometry, SlabAndPencilSizes18432) {
  // The paper's flagship case: 18432^3 on 3072 nodes, 2 tasks/node, np=4.
  ProblemConfig cfg{.n = 18432,
                    .nodes = 3072,
                    .tasks_per_node = 2,
                    .pencils = 4,
                    .variables = 3};
  EXPECT_EQ(cfg.ranks(), 6144);
  EXPECT_DOUBLE_EQ(cfg.slab_thickness(), 3.0);   // mz = N/P
  EXPECT_DOUBLE_EQ(cfg.pencil_width(), 4608.0);  // nyp = N/np
}

TEST(Geometry, P2PMessageSizesMatchTable2) {
  // Sec. 4.1: P2P = 4 * nv * (N/np) * (N/P)^2 for one pencil per A2A.
  // (the paper reports these sizes in binary MiB)
  constexpr double kMiB = 1024.0 * 1024.0;
  for (const auto& row : paper::kTable2) {
    const auto* c = std::find_if(
        std::begin(paper::kCases), std::end(paper::kCases),
        [&](const paper::Case& pc) { return pc.nodes == row.nodes; });
    ASSERT_NE(c, std::end(paper::kCases));

    // Case A: 6 tasks/node, 1 pencil per all-to-all.
    ProblemConfig a{.n = c->n,
                    .nodes = c->nodes,
                    .tasks_per_node = 6,
                    .pencils = c->pencils,
                    .variables = 3};
    EXPECT_NEAR(a.p2p_bytes(1) / kMiB, row.p2p_a_mb,
                0.05 * row.p2p_a_mb + 0.005)
        << "nodes=" << row.nodes;

    // Case B: 2 tasks/node, 1 pencil per all-to-all.
    ProblemConfig b = a;
    b.tasks_per_node = 2;
    EXPECT_NEAR(b.p2p_bytes(1) / kMiB, row.p2p_b_mb, 0.05 * row.p2p_b_mb)
        << "nodes=" << row.nodes;

    // Case C: 2 tasks/node, whole slab (np pencils) per all-to-all.
    EXPECT_NEAR(b.p2p_bytes(c->pencils) / kMiB, row.p2p_c_mb,
                0.05 * row.p2p_c_mb)
        << "nodes=" << row.nodes;
  }
}

TEST(Memory, MinNodesEstimateMatchesSec35) {
  MemoryModel m;
  // Sec. 3.5: equating 4*25*N^3/M to 448 GB gives M = 1302 for N = 18432.
  EXPECT_NEAR(m.min_nodes_estimate(18432), 1302.0, 2.0);
}

TEST(Memory, MinNodesIsDivisorOfN) {
  MemoryModel m;
  const int nodes = m.min_nodes(18432);
  EXPECT_EQ(nodes, 1536);  // smallest divisor of 18432 above 1302
  EXPECT_EQ(18432 % nodes, 0);
}

TEST(Memory, PencilEstimateMatchesSec35) {
  MemoryModel m;
  // Sec. 3.5: nominally np = 2.13 for 18432^3 on 3072 nodes.
  EXPECT_NEAR(m.pencils_needed_estimate(18432, 3072), 2.13, 0.02);
  EXPECT_EQ(m.pencils_needed(18432, 3072), 4);
}

TEST(Memory, Table1Reproduced) {
  const auto rows = table1();
  ASSERT_EQ(rows.size(), 4u);

  const double want_mem[] = {202.5, 202.5, 202.5, 227.8};
  const int want_np[] = {3, 3, 3, 4};
  const double want_pencil[] = {2.25, 2.25, 2.25, 1.90};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].nodes, paper::kCases[i].nodes);
    EXPECT_EQ(rows[i].n, paper::kCases[i].n);
    EXPECT_NEAR(rows[i].mem_per_node_gib, want_mem[i], 0.1) << "row " << i;
    EXPECT_EQ(rows[i].pencils, want_np[i]) << "row " << i;
    EXPECT_NEAR(rows[i].pencil_gib, want_pencil[i], 0.01) << "row " << i;
  }
}

TEST(Memory, HostFootprintScalesInverselyWithNodes) {
  MemoryModel m;
  EXPECT_NEAR(m.host_bytes_per_node(6144, 128) * 2,
              m.host_bytes_per_node(6144, 64), 1.0);
}

TEST(Scaling, WeakScalingMatchesTable4) {
  // Recompute Table 4 from Table 3's best timings via Eq. 4.
  const auto& ref = paper::kTable4[0];
  for (std::size_t i = 1; i < std::size(paper::kTable4); ++i) {
    const auto& row = paper::kTable4[i];
    const double ws = weak_scaling_percent(ref.n, ref.nodes, ref.time, row.n,
                                           row.nodes, row.time);
    EXPECT_NEAR(ws, row.weak_scaling_pct, 0.25) << "row " << i;
  }
}

TEST(Scaling, StrongScalingMatchesSec53) {
  const double ss = strong_scaling_percent(
      1536, paper::kStrong18432Nodes1536Time, 3072,
      paper::kStrong18432Nodes3072Time);
  EXPECT_NEAR(ss, paper::kStrong18432Percent, 0.3);
}

TEST(Scaling, PerfectScalingIsHundredPercent) {
  EXPECT_DOUBLE_EQ(weak_scaling_percent(64, 1, 1.0, 128, 8, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(strong_scaling_percent(1, 2.0, 2, 1.0), 100.0);
}

TEST(Scaling, RejectsNonPositiveInputs) {
  EXPECT_THROW(weak_scaling_percent(0, 1, 1.0, 1, 1, 1.0), util::Error);
  EXPECT_THROW(strong_scaling_percent(1, -1.0, 2, 1.0), util::Error);
}

}  // namespace
}  // namespace psdns::model
