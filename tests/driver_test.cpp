#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "comm/communicator.hpp"
#include "driver/campaign.hpp"
#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "obs/registry.hpp"
#include "resilience/fault.hpp"
#include "util/config.hpp"

namespace psdns::driver {
namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- util::Config ---

TEST(Config, ParsesKeysCommentsAndBlanks) {
  const auto cfg = util::Config::from_string(R"(
# a comment
n = 64           # trailing comment
viscosity=0.01
name = run one
flag = true
)");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_int("n", 0), 64);
  EXPECT_DOUBLE_EQ(cfg.get_double("viscosity", 0.0), 0.01);
  EXPECT_EQ(cfg.get("name", ""), "run one");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_THROW(util::Config::from_string("just words\n"), util::Error);
  EXPECT_THROW(util::Config::from_string("= value\n"), util::Error);
}

TEST(Config, RejectsBadTypes) {
  const auto cfg = util::Config::from_string("n = twelve\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("n", 0), util::Error);
  EXPECT_THROW(cfg.get_bool("b", false), util::Error);
}

TEST(Config, TracksUnusedKeys) {
  const auto cfg = util::Config::from_string("a = 1\nb = 2\nc = 3\n");
  cfg.get_int("a", 0);
  cfg.get("c", "");
  const auto unused = cfg.unused_keys();
  EXPECT_EQ(unused.size(), 1u);
  EXPECT_TRUE(unused.contains("b"));
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(util::Config::from_file(tmp("psdns_no_such.cfg")),
               util::Error);
}

// --- CampaignConfig parsing ---

TEST(CampaignConfig, ParsesFullSchema) {
  const auto file = util::Config::from_string(R"(
n = 48
viscosity = 0.005
scheme = rk4
forcing.enabled = true
forcing.power = 0.3
scalars = 2
scalar0.schmidt = 0.7
scalar1.schmidt = 4
scalar1.mean_gradient = 1.0
steps = 250
cfl = 0.4
checkpoint_every = 50
checkpoint_path = /tmp/x.ckp
)");
  const auto cfg = CampaignConfig::from(file);
  EXPECT_EQ(cfg.solver.n, 48u);
  EXPECT_EQ(cfg.solver.scheme, dns::TimeScheme::RK4);
  EXPECT_TRUE(cfg.solver.forcing.enabled);
  ASSERT_EQ(cfg.solver.scalars.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.solver.scalars[0].schmidt, 0.7);
  EXPECT_DOUBLE_EQ(cfg.solver.scalars[1].mean_gradient, 1.0);
  EXPECT_EQ(cfg.max_steps, 250);
  EXPECT_EQ(cfg.checkpoint_every, 50);
}

TEST(CampaignConfig, RejectsUnknownKeys) {
  const auto file = util::Config::from_string("n = 32\nviscossity = 0.01\n");
  EXPECT_THROW(CampaignConfig::from(file), util::Error);
}

TEST(CampaignConfig, RejectsBadScheme) {
  const auto file = util::Config::from_string("scheme = euler\n");
  EXPECT_THROW(CampaignConfig::from(file), util::Error);
}

TEST(CampaignConfig, ParsesEquationSystemKeys) {
  const auto file = util::Config::from_string(R"(
system = mhd
resistivity = 0.02
b0 = 0.3
)");
  const auto cfg = CampaignConfig::from(file);
  EXPECT_EQ(cfg.solver.system, dns::SystemType::Mhd);
  EXPECT_DOUBLE_EQ(cfg.solver.resistivity, 0.02);
  EXPECT_DOUBLE_EQ(cfg.b0, 0.3);

  const auto rot = CampaignConfig::from(
      util::Config::from_string("system = rotating\nrotation_omega = 2.5\n"));
  EXPECT_EQ(rot.solver.system, dns::SystemType::RotatingNS);
  EXPECT_DOUBLE_EQ(rot.solver.rotation_omega, 2.5);

  EXPECT_THROW(CampaignConfig::from(
                   util::Config::from_string("system = ideal_gas\n")),
               util::Error);
}

TEST(CampaignConfig, RejectsMeaninglessForcingBandAtParseTime) {
  // Bad bands must die in from(), before any solver is constructed, with
  // the typed error - every rank parses the same file, so the whole group
  // rejects the job together.
  EXPECT_THROW(CampaignConfig::from(util::Config::from_string(
                   "forcing.enabled = true\nforcing.klo = 0\n")),
               dns::ForcingError);
  EXPECT_THROW(CampaignConfig::from(util::Config::from_string(
                   "forcing.enabled = true\nforcing.klo = 3\n"
                   "forcing.khi = 2\n")),
               dns::ForcingError);
  EXPECT_THROW(CampaignConfig::from(util::Config::from_string(
                   "forcing.enabled = true\nforcing.power = 0\n")),
               dns::ForcingError);
  // With forcing off the band is never read, so it is not validated.
  EXPECT_NO_THROW(CampaignConfig::from(
      util::Config::from_string("forcing.klo = 0\n")));
}

TEST(Campaign, MhdCampaignPublishesSystemGauges) {
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.solver.system = dns::SystemType::Mhd;
  cfg.b0 = 0.4;
  cfg.max_steps = 4;
  cfg.max_dt = 0.005;
  cfg.diagnostics_every = 2;
  CampaignResult result;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  EXPECT_EQ(result.steps_run, 4);
  EXPECT_GT(result.final_diagnostics.energy, 0.0);
  const auto snap = obs::registry().snapshot();
  ASSERT_TRUE(snap.gauges.contains("driver.system.magnetic_energy"));
  EXPECT_GT(snap.gauges.at("driver.system.magnetic_energy"),
            0.4 * 0.4 / 2.0 * 0.9);  // at least the mean-field energy
  ASSERT_TRUE(snap.gauges.contains("driver.system.cross_helicity"));
}

// --- run_campaign ---

TEST(Campaign, RunsAndReportsAtCadence) {
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.max_steps = 8;
  cfg.diagnostics_every = 4;
  int reports = 0;
  CampaignResult result;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(
        comm, cfg, [&](std::int64_t, double, const dns::Diagnostics& d) {
          ++reports;
          EXPECT_GT(d.energy, 0.0);
        });
    if (comm.rank() == 0) result = r;
  });
  EXPECT_EQ(result.steps_run, 8);
  EXPECT_FALSE(result.restarted);
  EXPECT_EQ(reports, 2);  // steps 4 and 8, rank 0 only
  EXPECT_GT(result.final_time, 0.0);
  EXPECT_GT(result.final_diagnostics.energy, 0.0);
}

TEST(Campaign, TimeBudgetStopsEarly) {
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.max_steps = 1000;
  cfg.max_dt = 0.01;
  cfg.max_time = 0.035;  // ~4 steps
  CampaignResult result;
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    result = run_campaign(comm, cfg);
  });
  EXPECT_LT(result.steps_run, 10);
  EXPECT_GE(result.final_time, 0.035);
}

TEST(Campaign, SegmentsResumeAcrossInvocations) {
  const auto ckp = tmp("psdns_campaign_seg.ckp");
  std::remove(ckp.c_str());
  std::remove((ckp + ".1").c_str());  // keep=2 rotates a predecessor

  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.max_steps = 5;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 0;
  cfg.checkpoint_path = ckp;

  CampaignResult seg1, seg2;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(comm, cfg);
    if (comm.rank() == 0) seg1 = r;
  });
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(comm, cfg);
    if (comm.rank() == 0) seg2 = r;
  });
  EXPECT_FALSE(seg1.restarted);
  EXPECT_TRUE(seg2.restarted);
  EXPECT_NEAR(seg2.final_time, 2.0 * seg1.final_time, 1e-9);

  // The two-segment result equals one uninterrupted 10-step run.
  CampaignConfig uninterrupted = cfg;
  uninterrupted.max_steps = 10;
  uninterrupted.checkpoint_path.clear();
  CampaignResult ref;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(comm, uninterrupted);
    if (comm.rank() == 0) ref = r;
  });
  EXPECT_NEAR(seg2.final_diagnostics.energy, ref.final_diagnostics.energy,
              1e-12);
  std::remove(ckp.c_str());
  std::remove((ckp + ".1").c_str());
}

TEST(Campaign, WritesSeriesAndSpectrumArtifacts) {
  const auto series = tmp("psdns_campaign_series.csv");
  const auto spectrum = tmp("psdns_campaign_spec.csv");
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.max_steps = 3;
  cfg.max_dt = 0.01;
  cfg.series_path = series;
  cfg.spectrum_path = spectrum;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    run_campaign(comm, cfg);
  });
  EXPECT_TRUE(std::filesystem::exists(series));
  const auto spec = io::read_spectrum_csv(spectrum);
  EXPECT_EQ(spec.size(), 9u);  // N/2+1 shells
  double total = 0.0;
  for (const double e : spec) total += e;
  EXPECT_GT(total, 0.0);
  std::remove(series.c_str());
  std::remove(spectrum.c_str());
}

TEST(Campaign, ScalarsInitializedAndEvolved) {
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.scalars = {{.schmidt = 1.0, .mean_gradient = 1.0}};
  cfg.max_steps = 4;
  cfg.max_dt = 0.01;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    EXPECT_NO_THROW(run_campaign(comm, cfg));
  });
}

TEST(CampaignConfig, ParsesResilienceKnobs) {
  const auto file = util::Config::from_string(
      "checkpoint_keep = 4\nio_retries = 5\n");
  const auto cfg = CampaignConfig::from(file);
  EXPECT_EQ(cfg.checkpoint_keep, 4);
  EXPECT_EQ(cfg.io_retries, 5);
  EXPECT_THROW(CampaignConfig::from(
                   util::Config::from_string("checkpoint_keep = 0\n")),
               util::Error);
  EXPECT_THROW(
      CampaignConfig::from(util::Config::from_string("io_retries = 0\n")),
      util::Error);
}

// --- run_campaign_supervised ---

void remove_chain(const std::string& ckp) {
  for (int k = 0; k < 8; ++k) {
    std::remove(io::rotated_checkpoint_name(ckp, k).c_str());
  }
  std::remove((ckp + ".tmp").c_str());
}

CampaignConfig supervised_config(const std::string& ckp) {
  CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.seed = 7;
  cfg.max_steps = 4;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 0;
  cfg.checkpoint_every = 2;
  cfg.checkpoint_keep = 2;
  cfg.checkpoint_path = ckp;
  return cfg;
}

TEST(Supervised, MatchesPlainCampaignWithoutFaults) {
  const auto ckp_a = tmp("psdns_sup_plain_a.ckp");
  const auto ckp_b = tmp("psdns_sup_plain_b.ckp");
  remove_chain(ckp_a);
  remove_chain(ckp_b);

  CampaignResult plain, supervised;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign(comm, supervised_config(ckp_a));
    if (comm.rank() == 0) plain = r;
  });
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign_supervised(comm, supervised_config(ckp_b));
    if (comm.rank() == 0) supervised = r;
  });
  EXPECT_EQ(supervised.steps_run, plain.steps_run);
  EXPECT_EQ(supervised.recoveries, 0);
  EXPECT_EQ(supervised.checkpoints_discarded, 0);
  EXPECT_DOUBLE_EQ(supervised.final_time, plain.final_time);
  EXPECT_DOUBLE_EQ(supervised.final_diagnostics.energy,
                   plain.final_diagnostics.energy);
  remove_chain(ckp_a);
  remove_chain(ckp_b);
}

TEST(Supervised, RecoversFromInjectedCommFault) {
  const auto faulted_ckp = tmp("psdns_sup_comm_faulted.ckp");
  const auto clean_ckp = tmp("psdns_sup_comm_clean.ckp");
  remove_chain(faulted_ckp);
  remove_chain(clean_ckp);

  CampaignResult faulted;
  {
    resilience::ScopedPlan plan("comm.alltoall@5=throw");
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      const auto r =
          run_campaign_supervised(comm, supervised_config(faulted_ckp));
      if (comm.rank() == 0) faulted = r;
    });
  }
  EXPECT_EQ(faulted.recoveries, 1);

  CampaignResult clean;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign_supervised(comm, supervised_config(clean_ckp));
    if (comm.rank() == 0) clean = r;
  });
  // Deterministic replay: the recovered run lands on the identical state.
  EXPECT_DOUBLE_EQ(faulted.final_time, clean.final_time);
  EXPECT_DOUBLE_EQ(faulted.final_diagnostics.energy,
                   clean.final_diagnostics.energy);
  EXPECT_EQ(io::peek_checkpoint(faulted_ckp).step,
            io::peek_checkpoint(clean_ckp).step);
  remove_chain(faulted_ckp);
  remove_chain(clean_ckp);
}

TEST(Supervised, FallsBackToOlderCheckpointWhenNewestIsCorrupt) {
  const auto ckp = tmp("psdns_sup_fallback.ckp");
  remove_chain(ckp);

  // Allocation 1: checkpoints at step 3 (periodic) and step 4 (final).
  auto cfg = supervised_config(ckp);
  cfg.checkpoint_every = 3;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    run_campaign_supervised(comm, cfg);
  });
  ASSERT_EQ(io::peek_checkpoint(ckp).step, 4);
  ASSERT_EQ(io::peek_checkpoint(ckp + ".1").step, 3);

  // The newest checkpoint rots on disk; allocation 2 must discard it, fall
  // back to step 3, and still advance its full 4-step budget (to step 7).
  {
    std::FILE* f = std::fopen(ckp.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 200, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 200, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  CampaignResult result;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto r = run_campaign_supervised(comm, cfg);
    if (comm.rank() == 0) result = r;
  });
  EXPECT_TRUE(result.restarted);
  EXPECT_EQ(result.checkpoints_discarded, 1);
  EXPECT_EQ(result.steps_run, 4);
  EXPECT_EQ(io::peek_checkpoint(ckp).step, 7);
  remove_chain(ckp);
}

TEST(Supervised, GivesUpAfterRecoveryBudget) {
  const auto ckp = tmp("psdns_sup_givesup.ckp");
  remove_chain(ckp);
  resilience::ScopedPlan plan(
      "comm.alltoall@0=throw;comm.alltoall@1=throw;comm.alltoall@2=throw");
  SupervisorConfig sup;
  sup.max_recoveries = 2;
  EXPECT_THROW(comm::run_ranks(2,
                               [&](comm::Communicator& comm) {
                                 run_campaign_supervised(
                                     comm, supervised_config(ckp), sup);
                               }),
               resilience::InjectedFault);
  remove_chain(ckp);
}

}  // namespace
}  // namespace psdns::driver
