#include <gtest/gtest.h>

#include <vector>

#include "sim/dag.hpp"
#include "sim/engine.hpp"
#include "sim/flow_network.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"

namespace psdns::sim {
namespace {

TEST(Engine, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(2.0, [&] { order.push_back(2); });
  eng.schedule_at(1.0, [&] { order.push_back(1); });
  eng.schedule_at(3.0, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, TiesFireInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedSchedulingAdvancesClock) {
  Engine eng;
  double fired_at = -1.0;
  eng.schedule_at(1.0, [&] {
    eng.schedule_after(0.5, [&] { fired_at = eng.now(); });
  });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Engine, RejectsPastEvents) {
  Engine eng;
  eng.schedule_at(1.0, [&] {
    EXPECT_THROW(eng.schedule_at(0.5, [] {}), util::Error);
  });
  eng.run();
}

// --- FlowNetwork ---

TEST(FlowNetwork, SingleFlowRunsAtCapacity) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId link = net.add_link("nic", 100.0);  // 100 B/s
  double done_at = -1.0;
  net.start_flow({link}, 500.0, 1e12, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
}

TEST(FlowNetwork, RateCapLimitsBelowCapacity) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId link = net.add_link("nic", 100.0);
  double done_at = -1.0;
  net.start_flow({link}, 500.0, 50.0, [&] { done_at = eng.now(); });
  eng.run();
  EXPECT_NEAR(done_at, 10.0, 1e-9);
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId link = net.add_link("bus", 100.0);
  double t1 = -1.0, t2 = -1.0;
  net.start_flow({link}, 100.0, 1e12, [&] { t1 = eng.now(); });
  net.start_flow({link}, 100.0, 1e12, [&] { t2 = eng.now(); });
  eng.run();
  // Both run at 50 B/s -> both complete at t=2.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(FlowNetwork, DepartureSpeedsUpRemainingFlow) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId link = net.add_link("bus", 100.0);
  double t_small = -1.0, t_big = -1.0;
  net.start_flow({link}, 50.0, 1e12, [&] { t_small = eng.now(); });
  net.start_flow({link}, 150.0, 1e12, [&] { t_big = eng.now(); });
  eng.run();
  // Shared at 50 B/s until t=1 (small done); big has 100 left, then runs at
  // 100 B/s -> finishes at t=2.
  EXPECT_NEAR(t_small, 1.0, 1e-9);
  EXPECT_NEAR(t_big, 2.0, 1e-9);
}

TEST(FlowNetwork, LateArrivalSlowsExistingFlow) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId link = net.add_link("bus", 100.0);
  double t1 = -1.0, t2 = -1.0;
  net.start_flow({link}, 100.0, 1e12, [&] { t1 = eng.now(); });
  eng.schedule_at(0.5, [&] {
    net.start_flow({link}, 100.0, 1e12, [&] { t2 = eng.now(); });
  });
  eng.run();
  // Flow 1: 50 B alone (0.5 s), then 50 B at 50 B/s -> t=1.5.
  // Flow 2: 50 B at 50 B/s (until t=1.5), then 50 B at 100 B/s -> t=2.0.
  EXPECT_NEAR(t1, 1.5, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);
}

TEST(FlowNetwork, MultiLinkPathTakesBottleneck) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId fast = net.add_link("nvlink", 1000.0);
  const LinkId slow = net.add_link("nic", 10.0);
  double t = -1.0;
  net.start_flow({fast, slow}, 100.0, 1e12, [&] { t = eng.now(); });
  eng.run();
  EXPECT_NEAR(t, 10.0, 1e-9);
}

TEST(FlowNetwork, MaxMinWithHeterogeneousPaths) {
  // Flow A uses only link1 (cap 100); flow B uses link1+link2 (link2 cap 30).
  // B is bottlenecked at 30 by link2, A gets the rest (70).
  Engine eng;
  FlowNetwork net(eng);
  const LinkId l1 = net.add_link("l1", 100.0);
  const LinkId l2 = net.add_link("l2", 30.0);
  double ta = -1.0, tb = -1.0;
  net.start_flow({l1}, 700.0, 1e12, [&] { ta = eng.now(); });
  net.start_flow({l1, l2}, 300.0, 1e12, [&] { tb = eng.now(); });
  eng.run();
  EXPECT_NEAR(ta, 10.0, 1e-6);
  EXPECT_NEAR(tb, 10.0, 1e-6);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId l = net.add_link("l", 10.0);
  bool done = false;
  net.start_flow({l}, 0.0, 1e12, [&] { done = true; });
  eng.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

TEST(FlowNetwork, EmptyPathUsesRateCapOnly) {
  Engine eng;
  FlowNetwork net(eng);
  double t = -1.0;
  net.start_flow({}, 100.0, 20.0, [&] { t = eng.now(); });
  eng.run();
  EXPECT_NEAR(t, 5.0, 1e-9);
}

// --- DagRunner ---

TEST(Dag, LaneSerializesOps) {
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId lane = dag.add_lane("stream");
  const OpId a = dag.add_op("a", lane, OpCategory::Compute, 1.0, {});
  const OpId b = dag.add_op("b", lane, OpCategory::Compute, 2.0, {});
  const double makespan = dag.run();
  EXPECT_DOUBLE_EQ(makespan, 3.0);
  EXPECT_DOUBLE_EQ(dag.start_time(b), dag.finish_time(a));
}

TEST(Dag, IndependentLanesOverlap) {
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId l1 = dag.add_lane("compute");
  const LaneId l2 = dag.add_lane("transfer");
  dag.add_op("a", l1, OpCategory::Compute, 2.0, {});
  dag.add_op("b", l2, OpCategory::H2D, 2.0, {});
  EXPECT_DOUBLE_EQ(dag.run(), 2.0);
}

TEST(Dag, CrossLaneDependencyEnforced) {
  // Event-style sync: compute waits on the H2D in the other lane.
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId transfer = dag.add_lane("transfer");
  const LaneId compute = dag.add_lane("compute");
  const OpId h2d = dag.add_op("h2d", transfer, OpCategory::H2D, 1.5, {});
  const OpId fft = dag.add_op("fft", compute, OpCategory::Compute, 1.0, {h2d});
  EXPECT_DOUBLE_EQ(dag.run(), 2.5);
  EXPECT_DOUBLE_EQ(dag.start_time(fft), 1.5);
}

TEST(Dag, OverheadChargedBeforeBody) {
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId lane = dag.add_lane("s");
  const OpId op =
      dag.add_op("k", lane, OpCategory::Compute, 1.0, {}, /*overhead=*/0.25);
  EXPECT_DOUBLE_EQ(dag.run(), 1.25);
  EXPECT_DOUBLE_EQ(dag.start_time(op), 0.0);
}

TEST(Dag, FlowOpsContendOnSharedLink) {
  // Two 100-byte transfers in different lanes over one 100 B/s link: fair
  // sharing makes both finish at t=2, so the makespan sees the contention.
  Engine eng;
  FlowNetwork net(eng);
  const LinkId bus = net.add_link("bus", 100.0);
  DagRunner dag(eng, net);
  const LaneId l1 = dag.add_lane("a");
  const LaneId l2 = dag.add_lane("b");
  dag.add_flow_op("x", l1, OpCategory::H2D, 100.0, {bus}, 1e12, {});
  dag.add_flow_op("y", l2, OpCategory::Mpi, 100.0, {bus}, 1e12, {});
  EXPECT_NEAR(dag.run(), 2.0, 1e-9);
}

TEST(Dag, DiamondDependencyJoins) {
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId l1 = dag.add_lane("a");
  const LaneId l2 = dag.add_lane("b");
  const LaneId l3 = dag.add_lane("c");
  const OpId src = dag.add_op("src", l1, OpCategory::Compute, 1.0, {});
  const OpId left = dag.add_op("left", l1, OpCategory::Compute, 1.0, {src});
  const OpId right = dag.add_op("right", l2, OpCategory::Compute, 3.0, {src});
  const OpId join =
      dag.add_op("join", l3, OpCategory::Compute, 0.5, {left, right});
  EXPECT_DOUBLE_EQ(dag.run(), 4.5);
  EXPECT_DOUBLE_EQ(dag.start_time(join), 4.0);
}

TEST(Dag, RecordsCaptureCategories) {
  Engine eng;
  FlowNetwork net(eng);
  DagRunner dag(eng, net);
  const LaneId lane = dag.add_lane("s");
  dag.add_op("a", lane, OpCategory::H2D, 1.0, {});
  dag.add_op("b", lane, OpCategory::Compute, 2.0, {});
  dag.add_op("c", lane, OpCategory::H2D, 0.5, {});
  dag.run();
  const auto recs = dag.records();
  EXPECT_DOUBLE_EQ(total_time(recs, OpCategory::H2D), 1.5);
  EXPECT_DOUBLE_EQ(total_time(recs, OpCategory::Compute), 2.0);
}

// --- interference classes ---

TEST(FlowNetwork, InterferenceDegradesVictimWhileAggressorActive) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId bus = net.add_link("bus", 1000.0);
  net.set_interference(/*victim=*/1, /*aggressor=*/0);

  // Victim: 100 B at cap 100, factor 0.5 -> runs at 50 while the aggressor
  // (200 B at cap 200) is active (finishes at t=1), then at 100.
  double victim_done = -1.0, aggressor_done = -1.0;
  net.start_flow({bus}, 100.0, 100.0, [&] { victim_done = eng.now(); },
                 /*klass=*/1, /*interference_factor=*/0.5);
  net.start_flow({bus}, 200.0, 200.0, [&] { aggressor_done = eng.now(); },
                 /*klass=*/0);
  eng.run();
  EXPECT_NEAR(aggressor_done, 1.0, 1e-9);
  // Victim: 50 B by t=1, remaining 50 B at rate 100 -> t=1.5.
  EXPECT_NEAR(victim_done, 1.5, 1e-9);
}

TEST(FlowNetwork, NoInterferenceWithoutSharedLink) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId l1 = net.add_link("l1", 1000.0);
  const LinkId l2 = net.add_link("l2", 1000.0);
  net.set_interference(1, 0);
  double victim_done = -1.0;
  net.start_flow({l1}, 100.0, 100.0, [&] { victim_done = eng.now(); }, 1,
                 0.5);
  net.start_flow({l2}, 1000.0, 500.0, [] {}, 0);
  eng.run();
  EXPECT_NEAR(victim_done, 1.0, 1e-9);  // full cap: different link
}

TEST(FlowNetwork, FactorOneMeansNoDegradation) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId bus = net.add_link("bus", 1000.0);
  net.set_interference(1, 0);
  double victim_done = -1.0;
  net.start_flow({bus}, 100.0, 100.0, [&] { victim_done = eng.now(); }, 1,
                 1.0);
  net.start_flow({bus}, 500.0, 500.0, [] {}, 0);
  eng.run();
  EXPECT_NEAR(victim_done, 1.0, 1e-9);
}

TEST(FlowNetwork, AggressorsUnaffectedByVictims) {
  Engine eng;
  FlowNetwork net(eng);
  const LinkId bus = net.add_link("bus", 1000.0);
  net.set_interference(1, 0);
  double aggressor_done = -1.0;
  net.start_flow({bus}, 100.0, 100.0, [] {}, 1, 0.1);
  net.start_flow({bus}, 200.0, 200.0, [&] { aggressor_done = eng.now(); }, 0);
  eng.run();
  EXPECT_NEAR(aggressor_done, 1.0, 1e-9);
}

// --- trace helpers ---

TEST(Trace, BusyTimeMergesOverlaps) {
  std::vector<OpRecord> recs(3);
  recs[0] = {"a", "l", OpCategory::Mpi, 0.0, 2.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 1.0, 3.0};
  recs[2] = {"c", "l", OpCategory::Mpi, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 4.0);
  EXPECT_DOUBLE_EQ(total_time(recs, OpCategory::Mpi), 5.0);
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::H2D), 0.0);
}

TEST(Trace, BusyTimeEmptyRecords) {
  EXPECT_DOUBLE_EQ(busy_time({}, OpCategory::Mpi), 0.0);
}

TEST(Trace, BusyTimeZeroLengthOpsContributeNothing) {
  std::vector<OpRecord> recs(3);
  recs[0] = {"a", "l", OpCategory::Mpi, 1.0, 1.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 2.0, 2.0};
  // An inverted interval (finish < start) is also length zero for busy time.
  recs[2] = {"c", "l", OpCategory::Mpi, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 0.0);
}

TEST(Trace, BusyTimeBackToBackIntervalsMergeWithoutDoubleCount) {
  // [0,1] and [1,2] share only the endpoint: busy time is 2, not 2 + 0.
  std::vector<OpRecord> recs(2);
  recs[0] = {"a", "l", OpCategory::Mpi, 0.0, 1.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 2.0);
}

TEST(Trace, BusyTimeNegativeStartTimes) {
  // Spans before t=0 must not be swallowed by a sentinel "start" value.
  std::vector<OpRecord> recs(2);
  recs[0] = {"a", "l", OpCategory::Mpi, -3.0, -1.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 3.0);
}

TEST(Trace, BusyTimeDuplicateAndNestedSpans) {
  std::vector<OpRecord> recs(3);
  recs[0] = {"a", "l", OpCategory::Mpi, 0.0, 4.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 0.0, 4.0};
  recs[2] = {"c", "l", OpCategory::Mpi, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 4.0);
}

TEST(Trace, BusyTimeZeroLengthOpsMixedWithRealOnes) {
  // A zero-length op at t=10 must not seed a merge interval that bridges
  // to later real work.
  std::vector<OpRecord> recs(3);
  recs[0] = {"a", "l", OpCategory::Mpi, 10.0, 10.0};
  recs[1] = {"b", "l", OpCategory::Mpi, 0.0, 1.0};
  recs[2] = {"c", "l", OpCategory::Mpi, 20.0, 21.0};
  EXPECT_DOUBLE_EQ(busy_time(recs, OpCategory::Mpi), 2.0);
}

}  // namespace
}  // namespace psdns::sim
