#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "io/checkpoint.hpp"

namespace psdns::dns {
namespace {

SolverConfig scalar_config(std::size_t n, double nu,
                           std::vector<ScalarConfig> scalars) {
  SolverConfig cfg;
  cfg.n = n;
  cfg.viscosity = nu;
  cfg.scalars = std::move(scalars);
  return cfg;
}

TEST(Scalar, PureDiffusionDecaysExactly) {
  // Zero velocity: theta(k) decays as exp(-D k^2 t) with D = nu/Sc, and the
  // integrating factor makes this exact regardless of dt.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const double nu = 0.1, sc = 2.0;
    SlabSolver solver(comm, scalar_config(16, nu, {{.schmidt = sc}}));
    solver.init_scalar_from_function(
        0, [](double, double y, double) { return std::cos(3.0 * y); });
    const double var0 = solver.scalar_diagnostics(0).variance;
    EXPECT_NEAR(var0, 0.25, 1e-12);  // <cos^2>/2

    const double dt = 0.05;
    for (int s = 0; s < 10; ++s) solver.step(dt);
    const double d = nu / sc;
    const double want = var0 * std::exp(-2.0 * d * 9.0 * solver.time());
    EXPECT_NEAR(solver.scalar_diagnostics(0).variance, want, 1e-12);
  });
}

TEST(Scalar, VarianceBalancedByDissipation) {
  // Advection redistributes scalar variance without creating it:
  // d(var)/dt = -chi when unforced (G = 0).
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(comm, scalar_config(24, 0.02, {{.schmidt = 1.0}}));
    solver.init_isotropic(3, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 7, 3.0, 0.4);
    const auto d0 = solver.scalar_diagnostics(0);
    const double dt = 0.005;
    solver.step(dt);
    const auto d1 = solver.scalar_diagnostics(0);
    const double lhs = (d1.variance - d0.variance) / dt;
    const double rhs = -0.5 * (d0.dissipation + d1.dissipation);
    EXPECT_NEAR(lhs, rhs, 0.02 * std::abs(rhs));
  });
}

TEST(Scalar, MeanGradientSustainsFluctuations) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(
        comm,
        scalar_config(16, 0.02, {{.schmidt = 1.0, .mean_gradient = 1.0}}));
    solver.init_isotropic(4, 3.0, 0.5);
    // Scalar starts at zero; the mean gradient source pumps variance in.
    EXPECT_NEAR(solver.scalar_diagnostics(0).variance, 0.0, 1e-15);
    for (int s = 0; s < 10; ++s) solver.step(0.01);
    EXPECT_GT(solver.scalar_diagnostics(0).variance, 1e-6);
  });
}

TEST(Scalar, FluxIsDownGradient) {
  // With a positive mean gradient in y, turbulence transports scalar down
  // the gradient: <v theta> < 0 once the field develops.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(
        comm,
        scalar_config(24, 0.01, {{.schmidt = 1.0, .mean_gradient = 1.0}}));
    solver.init_isotropic(9, 3.0, 0.8);
    for (int s = 0; s < 20; ++s) solver.step(0.01);
    EXPECT_LT(solver.scalar_diagnostics(0).flux_y, 0.0);
  });
}

TEST(Scalar, HigherSchmidtDiffusesSlower) {
  // Two scalars in the same flow with the same IC: the high-Sc (low
  // diffusivity) one keeps more variance.
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(comm, scalar_config(16, 0.05,
                                          {{.schmidt = 0.5},
                                           {.schmidt = 4.0}}));
    solver.init_isotropic(2, 3.0, 0.3);
    solver.init_scalar_isotropic(0, 11, 3.0, 0.5);
    solver.init_scalar_isotropic(1, 11, 3.0, 0.5);
    const double v0 = solver.scalar_diagnostics(0).variance;
    const double v1 = solver.scalar_diagnostics(1).variance;
    EXPECT_NEAR(v0, v1, 1e-12);  // identical ICs
    for (int s = 0; s < 10; ++s) solver.step(0.01);
    EXPECT_GT(solver.scalar_diagnostics(1).variance,
              1.2 * solver.scalar_diagnostics(0).variance);
  });
}

TEST(Scalar, SpectrumSumsToVariance) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    SlabSolver solver(comm, scalar_config(24, 0.02, {{.schmidt = 1.0}}));
    solver.init_isotropic(1, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 2, 4.0, 0.7);
    const auto spec = solver.scalar_spectrum(0);
    double total = 0.0;
    for (const double e : spec) total += e;
    EXPECT_NEAR(total, solver.scalar_diagnostics(0).variance, 1e-10);
    EXPECT_NEAR(total, 0.7, 1e-10);  // the IC normalization target
  });
}

TEST(Scalar, RankCountInvariance) {
  auto run = [&](int P) {
    double var = 0.0;
    comm::run_ranks(P, [&](comm::Communicator& comm) {
      SlabSolver solver(
          comm,
          scalar_config(16, 0.02, {{.schmidt = 0.7, .mean_gradient = 0.5}}));
      solver.init_isotropic(7, 3.0, 0.5);
      solver.init_scalar_isotropic(0, 8, 3.0, 0.4);
      for (int s = 0; s < 3; ++s) solver.step(0.01);
      const double v = solver.scalar_diagnostics(0).variance;
      if (comm.rank() == 0) var = v;
    });
    return var;
  };
  const double v1 = run(1);
  EXPECT_NEAR(run(2), v1, 1e-13);
  EXPECT_NEAR(run(4), v1, 1e-13);
}

TEST(Scalar, RK4DiffusionAlsoExact) {
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    auto cfg = scalar_config(16, 0.08, {{.schmidt = 1.0}});
    cfg.scheme = TimeScheme::RK4;
    SlabSolver solver(comm, cfg);
    solver.init_scalar_from_function(
        0, [](double x, double, double) { return std::sin(2.0 * x); });
    for (int s = 0; s < 5; ++s) solver.step(0.05);
    const double want = 0.25 * std::exp(-2.0 * 0.08 * 4.0 * solver.time());
    EXPECT_NEAR(solver.scalar_diagnostics(0).variance, want, 1e-12);
  });
}

TEST(Scalar, CheckpointRoundTripWithScalars) {
  const auto path =
      (std::filesystem::temp_directory_path() / "psdns_ckp_scalar.bin")
          .string();
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    auto cfg = scalar_config(16, 0.02, {{.schmidt = 1.5}});
    SlabSolver a(comm, cfg);
    a.init_isotropic(5, 3.0, 0.5);
    a.init_scalar_isotropic(0, 6, 3.0, 0.3);
    for (int s = 0; s < 2; ++s) a.step(0.01);
    io::save_checkpoint(path, a);

    SlabSolver b(comm, cfg);
    const auto info = io::load_checkpoint(path, b);
    EXPECT_EQ(info.scalars, 1u);
    for (std::size_t i = 0; i < a.modes().local_modes(); ++i) {
      EXPECT_EQ(b.that(0)[i], a.that(0)[i]);
    }
  });
  std::remove(path.c_str());
}

TEST(Scalar, MismatchedScalarCountRejectedOnLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "psdns_ckp_nosc.bin")
          .string();
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SlabSolver a(comm, scalar_config(16, 0.02, {}));
    a.init_taylor_green();
    io::save_checkpoint(path, a);

    SlabSolver b(comm, scalar_config(16, 0.02, {{.schmidt = 1.0}}));
    EXPECT_THROW(io::load_checkpoint(path, b), util::Error);
  });
  std::remove(path.c_str());
}

TEST(Scalar, IndexValidation) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SlabSolver solver(comm, scalar_config(16, 0.02, {{.schmidt = 1.0}}));
    EXPECT_THROW(solver.scalar_diagnostics(1), util::Error);
    EXPECT_THROW(solver.scalar_spectrum(-1), util::Error);
    EXPECT_THROW(solver.init_scalar_isotropic(2, 1, 3.0, 0.5), util::Error);
  });
}

TEST(Scalar, RejectsNonPositiveSchmidt) {
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    EXPECT_THROW(SlabSolver(comm, scalar_config(16, 0.02, {{.schmidt = 0.0}})),
                 util::Error);
  });
}

}  // namespace
}  // namespace psdns::dns
