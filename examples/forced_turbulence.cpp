// Forced stationary isotropic turbulence - the production scenario the
// paper's simulations run (statistically steady turbulence sustained by
// low-wavenumber forcing). Prints the energy history and a text-rendered
// energy spectrum with the k^{-5/3} inertial-range reference.
//
//   ./forced_turbulence [--n=48] [--ranks=4] [--steps=60] [--power=0.3]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 48));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int steps = static_cast<int>(cli.get_int("steps", 60));
  const double power = cli.get_double("power", 0.3);

  std::printf("Forced isotropic turbulence: %zu^3, band k in [1,2], "
              "injection %.2f\n\n", n, power);

  std::vector<double> spectrum;
  double skewness = 0.0, re_lambda = 0.0;

  comm::run_ranks(ranks, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = n;
    cfg.viscosity = 0.006;
    cfg.forcing.enabled = true;
    cfg.forcing.klo = 1;
    cfg.forcing.khi = 2;
    cfg.forcing.power = power;
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(/*seed=*/7, /*k_peak=*/2.5, /*energy=*/0.6);

    for (int s = 0; s <= steps; ++s) {
      const double dt = std::min(solver.cfl_dt(0.4), 0.02);
      const auto d = solver.diagnostics();
      if (comm.rank() == 0 && s % 10 == 0) {
        std::printf("step %4lld  t=%7.3f  E=%8.4f  eps=%8.4f  Re_l=%6.1f  "
                    "k_max*eta=%.2f\n",
                    static_cast<long long>(solver.step_count()), solver.time(),
                    d.energy, d.dissipation, d.reynolds_lambda,
                    (static_cast<double>(n) / 3.0) * d.kolmogorov_eta);
      }
      if (s < steps) solver.step(dt);
    }

    auto spec = solver.spectrum();
    const double sk = solver.derivative_skewness();
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      spectrum = spec;
      skewness = sk;
      re_lambda = d.reynolds_lambda;
    }
  });

  std::printf("\nenergy spectrum E(k) (log scale, '*' = data, '.' = k^-5/3 "
              "through k=3):\n");
  const double ref_at_3 = spectrum[3];
  for (std::size_t k = 1; k < spectrum.size() && k <= n / 3; ++k) {
    if (spectrum[k] <= 0.0) continue;
    const double ref =
        ref_at_3 * std::pow(static_cast<double>(k) / 3.0, -5.0 / 3.0);
    const auto col = [&](double v) {
      return static_cast<int>(10.0 * (std::log10(v) + 8.0));
    };
    const int c_data = std::clamp(col(spectrum[k]), 0, 79);
    const int c_ref = std::clamp(col(ref), 0, 79);
    std::string line(80, ' ');
    line[static_cast<std::size_t>(c_ref)] = '.';
    line[static_cast<std::size_t>(c_data)] = '*';
    std::printf("k=%2zu |%s\n", k, line.c_str());
  }
  std::printf("\nvelocity-derivative skewness: %.3f (developed turbulence: "
              "~ -0.5)\n", skewness);
  std::printf("Taylor-scale Reynolds number: %.1f\n", re_lambda);
  return 0;
}
