// Live telemetry demo / CI smoke vehicle: runs a small 2-rank campaign
// with the metrics endpoint and step-series JSONL enabled, scrapes its own
// endpoint while stepping (exactly what an external Prometheus scraper or
// psdns_top would do), and echoes what it saw. CI greps the output for the
// Prometheus exposition to prove the endpoint serves real reduced metrics
// from a live run.
//
// Environment: PSDNS_METRICS_PORT overrides the ephemeral port,
// PSDNS_SERIES_FILE overrides the series path, PSDNS_HEALTH the monitor
// mode. Usage: live_telemetry [steps]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "comm/communicator.hpp"
#include "driver/campaign.hpp"
#include "obs/metric_series.hpp"
#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"

using namespace psdns;

int main(int argc, char** argv) {
  driver::CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.seed = 7;
  cfg.max_steps = argc > 1 ? std::atoll(argv[1]) : 8;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 1;
  cfg.metrics_port = 0;  // ephemeral unless PSDNS_METRICS_PORT overrides
  cfg.telemetry_path = "telemetry_series.jsonl";
  if (const char* series = std::getenv("PSDNS_SERIES_FILE")) {
    cfg.telemetry_path = series;  // keep the replay below reading the
  }                               // same file the campaign writes

  driver::CampaignResult result;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    const auto observer = [&](std::int64_t step, double,
                              const dns::Diagnostics&) {
      if (step != 2) return;  // one in-flight scrape is enough for smoke
      const int port =
          static_cast<int>(obs::registry().gauge("telemetry.metrics_port"));
      std::printf("live endpoint: http://127.0.0.1:%d/metrics\n", port);
      int status = 0;
      const std::string text =
          obs::http_get("127.0.0.1", port, "/metrics", &status);
      std::printf("scrape at step %lld: HTTP %d, %zu bytes\n",
                  static_cast<long long>(step), status, text.size());
      // Echo the exposition head so callers can validate the format.
      std::size_t shown = 0, pos = 0;
      while (shown < 12 && pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        std::printf("  %s\n",
                    text.substr(pos, eol - pos).c_str());
        pos = eol == std::string::npos ? text.size() : eol + 1;
        ++shown;
      }
    };
    const auto r = driver::run_campaign_supervised(comm, cfg, {}, observer);
    if (comm.rank() == 0) result = r;
  });

  const auto rows = obs::read_series_jsonl(cfg.telemetry_path);
  std::printf(
      "campaign done: %lld steps, endpoint port %d, health %s, "
      "%zu series rows in %s\n",
      static_cast<long long>(result.steps_run), result.metrics_port,
      obs::to_string(result.health.verdict), rows.size(),
      cfg.telemetry_path.c_str());
  return rows.size() == static_cast<std::size_t>(result.steps_run) ? 0 : 1;
}
