// Quickstart: the smallest complete psdns program. Sets up a 32^3 decaying
// isotropic turbulence DNS on 4 in-process ranks (threads), advances it with
// RK2 at the CFL-limited step, and prints flow statistics.
//
//   ./quickstart [--n=32] [--ranks=4] [--steps=20] [--viscosity=0.01]

#include <cstdio>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int steps = static_cast<int>(cli.get_int("steps", 20));
  const double nu = cli.get_double("viscosity", 0.01);

  std::printf("psdns quickstart: %zu^3 decaying turbulence on %d ranks\n\n",
              n, ranks);
  std::printf("%6s %10s %12s %12s %10s %8s\n", "step", "time", "energy",
              "dissipation", "Re_lambda", "CFL dt");

  comm::run_ranks(ranks, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = n;
    cfg.viscosity = nu;
    cfg.scheme = dns::TimeScheme::RK2;
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(/*seed=*/2024, /*k_peak=*/3.0, /*energy=*/0.5);

    for (int s = 0; s <= steps; ++s) {
      const double dt = solver.cfl_dt(0.5);
      const auto d = solver.diagnostics();
      if (comm.rank() == 0 && s % 5 == 0) {
        std::printf("%6lld %10.4f %12.3e %12.3e %10.1f %8.4f\n",
                    static_cast<long long>(solver.step_count()), solver.time(),
                    d.energy, d.dissipation, d.reynolds_lambda, dt);
      }
      if (s < steps) solver.step(dt);
    }

    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      std::printf("\nfinal: energy %.4e, max divergence %.2e (should be"
                  " ~round-off)\n",
                  d.energy, d.max_divergence);
    }
  });
  return 0;
}
