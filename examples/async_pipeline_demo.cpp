// The batched asynchronous pipeline, both ways:
//  1. functionally: a distributed 3-D FFT executed pencil-by-pencil through
//     staging buffers with nonblocking all-to-alls (Fig. 4), verified
//     against the monolithic transform on real data;
//  2. at Summit scale: the discrete-event co-simulation of the same
//     schedule, rendered as a Fig.-10-style timeline.
//
//   ./async_pipeline_demo [--n=32] [--ranks=4] [--np=4] [--q=2]

#include <cmath>
#include <cstdio>
#include <vector>

#include "comm/communicator.hpp"
#include "pipeline/async_fft.hpp"
#include "pipeline/dns_step_model.hpp"
#include "pipeline/timeline.hpp"
#include "transpose/dist_fft.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32));
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));
  const int np = static_cast<int>(cli.get_int("np", 4));
  const int q = static_cast<int>(cli.get_int("q", 2));

  std::printf("Part 1: functional Fig.-4 pipeline, %zu^3 on %d ranks, "
              "np=%d pencils, Q=%d per all-to-all\n", n, ranks, np, q);

  double worst = 0.0;
  comm::run_ranks(ranks, [&](comm::Communicator& comm) {
    transpose::SlabFft3d reference(comm, n);
    pipeline::AsyncFft3d pipelined(comm, n, np, q);

    util::Rng rng(99, static_cast<std::uint64_t>(comm.rank()));
    std::vector<pipeline::Real> phys(reference.physical_elems());
    for (auto& v : phys) v = rng.gaussian();

    std::vector<pipeline::Complex> want(reference.spectral_elems());
    std::vector<pipeline::Complex> got(reference.spectral_elems());
    reference.forward(phys, want);
    const pipeline::Real* pp = phys.data();
    pipeline::Complex* gp = got.data();
    pipelined.forward(std::span<const pipeline::Real* const>(&pp, 1),
                      std::span<pipeline::Complex* const>(&gp, 1));

    double local = 0.0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      local = std::max(local, std::abs(got[i] - want[i]));
    }
    const double global = comm.allreduce_max(local);
    if (comm.rank() == 0) worst = global;
  });
  std::printf("  max |pipelined - monolithic| = %.2e %s\n\n", worst,
              worst < 1e-9 ? "(identical to round-off)" : "(MISMATCH!)");

  std::printf("Part 2: the same schedule co-simulated at 18432^3 on 3072 "
              "Summit nodes\n\n");
  const pipeline::DnsStepModel model;
  for (const auto mpi : {pipeline::MpiConfig::B, pipeline::MpiConfig::C}) {
    pipeline::PipelineConfig cfg;
    cfg.n = 18432;
    cfg.nodes = 3072;
    cfg.pencils = 4;
    cfg.mpi = mpi;
    const auto r = model.simulate_gpu_step(cfg);
    std::printf("%s: %s per RK2 step\n", pipeline::to_string(mpi),
                util::format_time(r.seconds).c_str());
    std::printf("%s", pipeline::render_timeline(r.records, r.seconds,
                                                {.columns = 90})
                          .c_str());
    std::printf("%s\n", pipeline::summarize_busy(r.records, r.seconds)
                            .c_str());
  }
  return worst < 1e-9 ? 0 : 1;
}
