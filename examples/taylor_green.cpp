// Taylor-Green validation: the 2-D Taylor-Green vortex is an exact
// Navier-Stokes solution whose energy decays as E(t) = E0 exp(-4 nu t).
// This example runs it through the full 3-D pseudo-spectral machinery (both
// the slab solver and the pencil baseline) and prints simulated vs analytic
// decay - the canonical correctness check for the whole stack.
//
//   ./taylor_green [--n=32] [--viscosity=0.05] [--steps=40] [--dt=0.01]

#include <cmath>
#include <cstdio>

#include "comm/communicator.hpp"
#include "dns/pencil_solver.hpp"
#include "dns/solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32));
  const double nu = cli.get_double("viscosity", 0.05);
  const int steps = static_cast<int>(cli.get_int("steps", 40));
  const double dt = cli.get_double("dt", 0.01);

  std::printf("Taylor-Green vortex, %zu^3, nu = %g\n", n, nu);
  std::printf("analytic: E(t) = 0.25 * exp(-4 nu t)\n\n");
  std::printf("%8s %14s %14s %14s %12s\n", "t", "E (slab)", "E (pencil)",
              "E (analytic)", "rel. error");

  // Slab solver on 4 ranks.
  std::vector<double> slab_energy;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = n;
    cfg.viscosity = nu;
    dns::SlabSolver solver(comm, cfg);
    solver.init_taylor_green();
    for (int s = 0; s <= steps; ++s) {
      const double e = solver.diagnostics().energy;
      if (comm.rank() == 0) slab_energy.push_back(e);
      if (s < steps) solver.step(dt);
    }
  });

  // Pencil (2-D decomposition) baseline on a 2x2 grid.
  std::vector<double> pencil_energy;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::PencilSolverConfig cfg;
    cfg.n = n;
    cfg.viscosity = nu;
    cfg.pr = 2;
    cfg.pc = 2;
    dns::PencilSolver solver(comm, cfg);
    solver.init_taylor_green();
    for (int s = 0; s <= steps; ++s) {
      const double e = solver.kinetic_energy();
      if (comm.rank() == 0) pencil_energy.push_back(e);
      if (s < steps) solver.step(dt);
    }
  });

  double worst = 0.0;
  for (int s = 0; s <= steps; s += 5) {
    const double t = s * dt;
    const double analytic = 0.25 * std::exp(-4.0 * nu * t);
    const double err =
        std::fabs(slab_energy[static_cast<std::size_t>(s)] - analytic) /
        analytic;
    worst = std::max(worst, err);
    std::printf("%8.3f %14.8f %14.8f %14.8f %12.2e\n", t,
                slab_energy[static_cast<std::size_t>(s)],
                pencil_energy[static_cast<std::size_t>(s)], analytic, err);
  }
  std::printf("\nworst relative error vs analytic: %.2e %s\n", worst,
              worst < 1e-6 ? "(PASS)" : "(FAIL)");
  return worst < 1e-6 ? 0 : 1;
}
