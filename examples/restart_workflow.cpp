// Production restart workflow: run a segment, checkpoint, "lose the
// allocation", restart on a DIFFERENT rank count, and verify the continued
// run matches an uninterrupted reference. Also writes the statistics time
// series and a spectrum snapshot as CSV - the artifacts a real campaign
// archives after every segment.
//
//   ./restart_workflow [--n=32] [--segment=10]

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32));
  const int segment = static_cast<int>(cli.get_int("segment", 10));
  const double dt = 0.01;

  const auto dir = std::filesystem::temp_directory_path();
  const std::string ckp = (dir / "psdns_demo.ckp").string();
  const std::string series = (dir / "psdns_demo_series.csv").string();
  const std::string spectrum = (dir / "psdns_demo_spectrum.csv").string();

  dns::SolverConfig cfg;
  cfg.n = n;
  cfg.viscosity = 0.01;

  std::printf("Segment 1: %d steps on 4 ranks, then checkpoint\n", segment);
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(42, 3.0, 0.5);
    std::unique_ptr<io::SeriesWriter> log;
    if (comm.rank() == 0) log = std::make_unique<io::SeriesWriter>(series);
    for (int s = 0; s < segment; ++s) {
      solver.step(dt);
      const auto d = solver.diagnostics();
      if (comm.rank() == 0) log->append(solver.step_count(), solver.time(), d);
    }
    io::save_checkpoint(ckp, solver);
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      std::printf("  checkpoint at t=%.3f, E=%.6f -> %s\n", solver.time(),
                  d.energy, ckp.c_str());
    }
  });

  const auto info = io::peek_checkpoint(ckp);
  std::printf("\nheader: N=%llu, t=%.3f, step=%lld, nu=%g\n\n",
              static_cast<unsigned long long>(info.n), info.time,
              static_cast<long long>(info.step), info.viscosity);

  std::printf("Segment 2: restart on 2 ranks (different allocation), %d more"
              " steps\n", segment);
  double restarted_energy = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    io::load_checkpoint(ckp, solver);
    for (int s = 0; s < segment; ++s) solver.step(dt);
    auto spec = solver.spectrum();
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      restarted_energy = d.energy;
      io::write_spectrum_csv(spectrum, spec);
      std::printf("  finished at t=%.3f, E=%.6f; spectrum -> %s\n",
                  solver.time(), d.energy, spectrum.c_str());
    }
  });

  std::printf("\nReference: %d uninterrupted steps on 4 ranks\n", 2 * segment);
  double reference_energy = 0.0;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(42, 3.0, 0.5);
    for (int s = 0; s < 2 * segment; ++s) solver.step(dt);
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) reference_energy = d.energy;
  });

  const double err = std::abs(restarted_energy - reference_energy);
  std::printf("  restarted E=%.12f vs uninterrupted E=%.12f (|diff|=%.2e)\n",
              restarted_energy, reference_energy, err);
  std::printf("%s\n", err < 1e-10 ? "PASS: restart is transparent"
                                  : "FAIL: restart diverged");
  std::remove(ckp.c_str());
  std::remove(series.c_str());
  std::remove(spectrum.c_str());
  return err < 1e-10 ? 0 : 1;
}
