// Production restart workflow, in two acts.
//
// Part 1: run a segment, checkpoint, "lose the allocation", restart on a
// DIFFERENT rank count, and verify the continued run matches an
// uninterrupted reference. Also writes the statistics time series and a
// spectrum snapshot as CSV - the artifacts a real campaign archives after
// every segment.
//
// Part 2: the fault drill. A supervised campaign is run under an injected
// fault plan (one fault per site: a thrown collective, a thrown device
// copy, a short checkpoint write, a bit-flipped restart read) PLUS a
// simulated node death mid-checkpoint-write between allocations (garbage
// "<ckp>.tmp" left behind, newest checkpoint corrupted on disk). The
// supervisor must retry, roll back, and still land bit-for-bit on the
// fault-free campaign's final checkpoint.
//
//   ./restart_workflow [--n=32] [--segment=10]
//   PSDNS_FAULT_PLAN="site@call=kind;..." ./restart_workflow   # custom drill

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "driver/campaign.hpp"
#include "io/checkpoint.hpp"
#include "io/series.hpp"
#include "obs/registry.hpp"
#include "resilience/fault.hpp"
#include "util/cli.hpp"

namespace {

void remove_chain(const std::string& ckp) {
  for (int k = 0; k < 8; ++k) {
    std::remove(psdns::io::rotated_checkpoint_name(ckp, k).c_str());
  }
  std::remove((ckp + ".tmp").c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Two scheduler allocations of `steps` supervised steps each.
psdns::driver::CampaignResult two_allocations(
    const psdns::driver::CampaignConfig& cfg, int* recoveries,
    int* discarded) {
  psdns::driver::CampaignResult last;
  for (int alloc = 0; alloc < 2; ++alloc) {
    psdns::comm::run_ranks(2, [&](psdns::comm::Communicator& comm) {
      const auto r = psdns::driver::run_campaign_supervised(comm, cfg);
      if (comm.rank() == 0) {
        last = r;
        *recoveries += r.recoveries;
        *discarded += r.checkpoints_discarded;
      }
    });
  }
  return last;
}

/// The drill: clean reference campaign vs. the same campaign under the
/// fault plan plus a simulated crash mid-checkpoint-write between the two
/// allocations. Returns true when the faulted run converges to the clean
/// one exactly.
bool fault_drill(std::size_t n) {
  using namespace psdns;
  const auto dir = std::filesystem::temp_directory_path();
  const std::string clean_ckp = (dir / "psdns_drill_clean.ckp").string();
  const std::string faulted_ckp = (dir / "psdns_drill_faulted.ckp").string();
  remove_chain(clean_ckp);
  remove_chain(faulted_ckp);

  driver::CampaignConfig cfg;
  cfg.solver.n = n;
  cfg.solver.viscosity = 0.01;
  cfg.seed = 42;
  cfg.max_steps = 4;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 0;
  cfg.checkpoint_every = 2;
  cfg.checkpoint_keep = 2;

  cfg.checkpoint_path = clean_ckp;
  int clean_rec = 0, clean_disc = 0;
  const auto clean = two_allocations(cfg, &clean_rec, &clean_disc);

  // One fault per injection site unless the operator supplied a plan.
  // (comm/gpu faults must be `throw` here: a bit_flip on a collective is
  // silent state corruption, which no amount of rollback can undo without
  // a checksum on the physics itself.)
  const char* env = std::getenv("PSDNS_FAULT_PLAN");
  const std::string plan =
      env != nullptr ? env
                     : "comm.alltoall@6=throw;gpu.memcpy2d@9=throw;"
                       "io.ckpt.write@0=short_write;io.ckpt.read@2=bit_flip";
  std::printf("  fault plan: %s\n", plan.c_str());

  auto& reg = obs::registry();
  const auto injected0 = reg.counter("fault.injected");
  const auto retries0 = reg.counter("resilience.retries");
  const auto recovered0 = reg.counter("resilience.recoveries");
  const auto discarded0 = reg.counter("ckpt.discarded");
  const auto crc0 = reg.counter("ckpt.crc_failures");

  cfg.checkpoint_path = faulted_ckp;
  int rec = 0, disc = 0;
  resilience::arm(resilience::FaultPlan::parse(plan));
  psdns::comm::run_ranks(2, [&](psdns::comm::Communicator& comm) {
    driver::run_campaign_supervised(comm, cfg);
  });
  // The node "dies" replacing the checkpoint between allocations: a partial
  // tmp file survives and the newest checkpoint is torn on disk.
  {
    std::FILE* tmp = std::fopen((faulted_ckp + ".tmp").c_str(), "wb");
    std::fputs("torn write from the dead allocation", tmp);
    std::fclose(tmp);
    std::FILE* f = std::fopen(faulted_ckp.c_str(), "r+b");
    std::fseek(f, 99, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 99, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  driver::CampaignResult faulted;
  psdns::comm::run_ranks(2, [&](psdns::comm::Communicator& comm) {
    const auto r = driver::run_campaign_supervised(comm, cfg);
    if (comm.rank() == 0) {
      faulted = r;
      rec += r.recoveries;
      disc += r.checkpoints_discarded;
    }
  });
  resilience::disarm();

  std::printf("  injected=%lld retried=%lld recoveries=%lld "
              "ckpts discarded=%lld crc failures=%lld\n",
              static_cast<long long>(reg.counter("fault.injected") -
                                     injected0),
              static_cast<long long>(reg.counter("resilience.retries") -
                                     retries0),
              static_cast<long long>(reg.counter("resilience.recoveries") -
                                     recovered0),
              static_cast<long long>(reg.counter("ckpt.discarded") -
                                     discarded0),
              static_cast<long long>(reg.counter("ckpt.crc_failures") -
                                     crc0));

  const auto clean_info = io::verify_checkpoint(clean_ckp);
  const auto faulted_info = io::verify_checkpoint(faulted_ckp);
  const bool same_step = faulted_info.step == clean_info.step;
  const bool same_bytes = read_file(faulted_ckp) == read_file(clean_ckp);
  const bool same_energy =
      faulted.final_diagnostics.energy == clean.final_diagnostics.energy;
  std::printf("  final step %lld vs %lld; checkpoint bytes %s; E=%.12f %s\n",
              static_cast<long long>(faulted_info.step),
              static_cast<long long>(clean_info.step),
              same_bytes ? "identical" : "DIFFER",
              faulted.final_diagnostics.energy,
              same_energy ? "(matches clean)" : "(DIVERGED)");
  remove_chain(clean_ckp);
  remove_chain(faulted_ckp);
  return same_step && same_bytes && same_energy && rec + disc > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 32));
  const int segment = static_cast<int>(cli.get_int("segment", 10));
  const double dt = 0.01;

  const auto dir = std::filesystem::temp_directory_path();
  const std::string ckp = (dir / "psdns_demo.ckp").string();
  const std::string series = (dir / "psdns_demo_series.csv").string();
  const std::string spectrum = (dir / "psdns_demo_spectrum.csv").string();

  dns::SolverConfig cfg;
  cfg.n = n;
  cfg.viscosity = 0.01;

  std::printf("Segment 1: %d steps on 4 ranks, then checkpoint\n", segment);
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(42, 3.0, 0.5);
    std::unique_ptr<io::SeriesWriter> log;
    if (comm.rank() == 0) log = std::make_unique<io::SeriesWriter>(series);
    for (int s = 0; s < segment; ++s) {
      solver.step(dt);
      const auto d = solver.diagnostics();
      if (comm.rank() == 0) log->append(solver.step_count(), solver.time(), d);
    }
    io::save_checkpoint(ckp, solver);
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      std::printf("  checkpoint at t=%.3f, E=%.6f -> %s\n", solver.time(),
                  d.energy, ckp.c_str());
    }
  });

  const auto info = io::peek_checkpoint(ckp);
  std::printf("\nheader: N=%llu, t=%.3f, step=%lld, nu=%g\n\n",
              static_cast<unsigned long long>(info.n), info.time,
              static_cast<long long>(info.step), info.viscosity);

  std::printf("Segment 2: restart on 2 ranks (different allocation), %d more"
              " steps\n", segment);
  double restarted_energy = 0.0;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    io::load_checkpoint(ckp, solver);
    for (int s = 0; s < segment; ++s) solver.step(dt);
    auto spec = solver.spectrum();
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) {
      restarted_energy = d.energy;
      io::write_spectrum_csv(spectrum, spec);
      std::printf("  finished at t=%.3f, E=%.6f; spectrum -> %s\n",
                  solver.time(), d.energy, spectrum.c_str());
    }
  });

  std::printf("\nReference: %d uninterrupted steps on 4 ranks\n", 2 * segment);
  double reference_energy = 0.0;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(42, 3.0, 0.5);
    for (int s = 0; s < 2 * segment; ++s) solver.step(dt);
    const auto d = solver.diagnostics();
    if (comm.rank() == 0) reference_energy = d.energy;
  });

  const double err = std::abs(restarted_energy - reference_energy);
  std::printf("  restarted E=%.12f vs uninterrupted E=%.12f (|diff|=%.2e)\n",
              restarted_energy, reference_energy, err);
  const bool restart_ok = err < 1e-10;
  std::printf("%s\n", restart_ok ? "PASS: restart is transparent"
                                 : "FAIL: restart diverged");
  std::remove(ckp.c_str());
  std::remove(series.c_str());
  std::remove(spectrum.c_str());

  std::printf("\nFault drill: supervised campaign under an injected fault "
              "plan\n");
  const bool drill_ok = fault_drill(n);
  std::printf("%s\n", drill_ok
                          ? "PASS: faulted campaign recovered to the "
                            "fault-free state"
                          : "FAIL: recovery did not converge");
  return restart_ok && drill_ok ? 0 : 1;
}
