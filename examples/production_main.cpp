// The production entry point: a config-file-driven campaign runner, the
// shape of "the DNS code" a computing-facility user actually submits. With
// no arguments it writes and runs a demonstration config; point it at your
// own with --config=path. Re-running with the same checkpoint path resumes
// where the previous segment stopped.
//
//   ./production_main [--config=run.cfg] [--ranks=4]

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "comm/communicator.hpp"
#include "driver/campaign.hpp"
#include "util/cli.hpp"

namespace {

const char* kDemoConfig = R"(# psdns demonstration campaign
n = 32
viscosity = 0.008
scheme = rk2
forcing.enabled = true
forcing.power = 0.25

scalars = 1
scalar0.schmidt = 1.0
scalar0.mean_gradient = 1.0

steps = 20
cfl = 0.4
max_dt = 0.02
diagnostics_every = 5
checkpoint_every = 10
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4));

  std::string config_path = cli.get("config", "");
  const auto tmp = std::filesystem::temp_directory_path();
  if (config_path.empty()) {
    config_path = (tmp / "psdns_demo_run.cfg").string();
    std::ofstream out(config_path);
    out << kDemoConfig;
    out << "checkpoint_path = " << (tmp / "psdns_demo_run.ckp").string()
        << "\n";
    out << "series_path = " << (tmp / "psdns_demo_run.csv").string() << "\n";
    out << "spectrum_path = " << (tmp / "psdns_demo_run_spectrum.csv").string()
        << "\n";
    std::printf("no --config given; wrote a demo campaign to %s\n\n",
                config_path.c_str());
  }

  const auto file = util::Config::from_file(config_path);
  const auto cfg = driver::CampaignConfig::from(file);
  std::printf("campaign: %zu^3, nu=%g, %lld steps, %d scalars, %d ranks\n\n",
              cfg.solver.n, cfg.solver.viscosity,
              static_cast<long long>(cfg.max_steps),
              static_cast<int>(cfg.solver.scalars.size()), ranks);
  std::printf("%8s %10s %12s %12s %10s\n", "step", "time", "energy",
              "dissipation", "Re_lambda");

  driver::CampaignResult result;
  comm::run_ranks(ranks, [&](comm::Communicator& comm) {
    const auto r = driver::run_campaign(
        comm, cfg,
        [](std::int64_t step, double time, const dns::Diagnostics& d) {
          std::printf("%8lld %10.4f %12.4e %12.4e %10.1f\n",
                      static_cast<long long>(step), time, d.energy,
                      d.dissipation, d.reynolds_lambda);
        });
    if (comm.rank() == 0) result = r;
  });

  std::printf("\nsegment done: %lld steps to t=%.4f%s\n",
              static_cast<long long>(result.steps_run), result.final_time,
              result.restarted ? " (resumed from checkpoint)" : "");
  if (!cfg.checkpoint_path.empty()) {
    std::printf("re-run the same command to continue from %s\n",
                cfg.checkpoint_path.c_str());
  }
  return 0;
}
