// Resolution continuation - the campaign pattern behind record-size DNS:
// spin up turbulence cheaply on a coarse grid, then spectrally interpolate
// onto a finer grid and continue, letting the small scales fill in. (The
// paper's 18432^3 production runs descend from lower-resolution databases
// in exactly this way.)
//
//   ./resolution_continuation [--coarse=24] [--fine=48] [--spinup=30]

#include <cmath>
#include <cstdio>

#include "comm/communicator.hpp"
#include "dns/regrid.hpp"
#include "dns/solver.hpp"
#include "dns/statistics.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto coarse = static_cast<std::size_t>(cli.get_int("coarse", 24));
  const auto fine = static_cast<std::size_t>(cli.get_int("fine", 48));
  const int spinup = static_cast<int>(cli.get_int("spinup", 30));

  std::printf("Resolution continuation: spin up at %zu^3, continue at %zu^3\n\n",
              coarse, fine);

  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SolverConfig ccfg;
    ccfg.n = coarse;
    ccfg.viscosity = 0.01;
    ccfg.forcing.enabled = true;
    ccfg.forcing.power = 0.25;
    dns::SlabSolver coarse_run(comm, ccfg);
    coarse_run.init_isotropic(17, 2.5, 0.5);

    for (int s = 0; s < spinup; ++s) {
      coarse_run.step(std::min(coarse_run.cfl_dt(0.4), 0.02));
    }
    const auto dc = coarse_run.diagnostics();
    if (comm.rank() == 0) {
      std::printf("coarse run after %d steps: t=%.3f, E=%.4f, Re_l=%.1f, "
                  "k_max*eta=%.2f %s\n",
                  spinup, coarse_run.time(), dc.energy, dc.reynolds_lambda,
                  dns::kmax_eta(coarse, dc.kolmogorov_eta),
                  dns::kmax_eta(coarse, dc.kolmogorov_eta) < 1.0
                      ? "(under-resolved!)"
                      : "");
    }

    // Continue at the finer resolution; viscosity can now be lowered to
    // exploit it (higher Reynolds number), as production campaigns do.
    dns::SolverConfig fcfg = ccfg;
    fcfg.n = fine;
    fcfg.viscosity = 0.005;
    dns::SlabSolver fine_run(comm, fcfg);
    dns::spectral_regrid(coarse_run, fine_run);

    const auto d0 = fine_run.diagnostics();
    if (comm.rank() == 0) {
      std::printf("after regrid to %zu^3: E=%.4f (preserved: %s), "
                  "max div=%.1e\n\n",
                  fine, d0.energy,
                  std::abs(d0.energy - dc.energy) < 1e-10 ? "yes" : "NO",
                  d0.max_divergence);
      std::printf("%6s %8s %10s %12s %10s\n", "step", "t", "E", "Re_lambda",
                  "kmax*eta");
    }
    for (int s = 0; s <= spinup; ++s) {
      if (s % 10 == 0) {
        const auto d = fine_run.diagnostics();
        if (comm.rank() == 0) {
          std::printf("%6lld %8.3f %10.4f %12.1f %10.2f\n",
                      static_cast<long long>(fine_run.step_count()),
                      fine_run.time(), d.energy, d.reynolds_lambda,
                      dns::kmax_eta(fine, d.kolmogorov_eta));
        }
      }
      if (s < spinup) fine_run.step(std::min(fine_run.cfl_dt(0.4), 0.01));
    }
    if (comm.rank() == 0) {
      std::printf("\nThe fine grid inherits the developed large scales and\n"
                  "grows its own small-scale range at the higher Reynolds\n"
                  "number - no re-spin-up required.\n");
    }
  });
  return 0;
}
