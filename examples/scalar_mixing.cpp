// Turbulent mixing of passive scalars - the science application of the
// companion GPU code the paper cites (Clay et al. 2018, high-Schmidt
// mixing). Two scalars with different Schmidt numbers ride the same forced
// turbulence, sustained by a uniform mean gradient; the run reports scalar
// variances, fluxes, the mechanical-to-scalar time-scale ratio, and
// side-by-side spectra showing the high-Sc scalar's extended fine structure.
//
//   ./scalar_mixing [--n=48] [--steps=50]

#include <cmath>
#include <cstdio>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 48));
  const int steps = static_cast<int>(cli.get_int("steps", 50));

  std::printf("Passive-scalar mixing, %zu^3: Sc = 0.5 and Sc = 4.0 in the\n"
              "same forced turbulence, mean scalar gradient G = 1 along y\n\n",
              n);

  std::vector<double> spec_lo, spec_hi;
  comm::run_ranks(4, [&](comm::Communicator& comm) {
    dns::SolverConfig cfg;
    cfg.n = n;
    cfg.viscosity = 0.008;
    cfg.forcing.enabled = true;
    cfg.forcing.power = 0.25;
    cfg.scalars = {{.schmidt = 0.5, .mean_gradient = 1.0},
                   {.schmidt = 4.0, .mean_gradient = 1.0}};
    dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(11, 2.5, 0.6);

    for (int s = 0; s <= steps; ++s) {
      if (s % 10 == 0) {
        const auto d = solver.diagnostics();
        const auto s0 = solver.scalar_diagnostics(0);
        const auto s1 = solver.scalar_diagnostics(1);
        if (comm.rank() == 0) {
          std::printf("step %4lld t=%6.3f  E=%7.4f  var(Sc=.5)=%8.5f "
                      "flux=%8.5f | var(Sc=4)=%8.5f flux=%8.5f\n",
                      static_cast<long long>(solver.step_count()),
                      solver.time(), d.energy, s0.variance, s0.flux_y,
                      s1.variance, s1.flux_y);
        }
      }
      if (s < steps) solver.step(std::min(solver.cfl_dt(0.4), 0.02));
    }

    // Mechanical-to-scalar time-scale ratio (canonically ~2 in stationary
    // mixing).
    const auto d = solver.diagnostics();
    const auto s1 = solver.scalar_diagnostics(1);
    const double r = (2.0 * s1.variance / s1.dissipation) /
                     (2.0 * d.energy / d.dissipation);
    auto lo = solver.scalar_spectrum(0);
    auto hi = solver.scalar_spectrum(1);
    if (comm.rank() == 0) {
      std::printf("\ntime-scale ratio (scalar/mechanical, Sc=4): %.2f\n", r);
      spec_lo = lo;
      spec_hi = hi;
    }
  });

  std::printf("\nscalar spectra (log10 E_theta, '-' Sc=0.5, '+' Sc=4.0):\n");
  for (std::size_t k = 1; k <= n / 3; ++k) {
    if (spec_lo[k] <= 0.0 || spec_hi[k] <= 0.0) continue;
    const auto col = [&](double v) {
      return std::clamp(static_cast<int>(8.0 * (std::log10(v) + 9.0)), 0, 75);
    };
    std::string line(76, ' ');
    line[static_cast<std::size_t>(col(spec_lo[k]))] = '-';
    line[static_cast<std::size_t>(col(spec_hi[k]))] = '+';
    std::printf("k=%2zu |%s\n", k, line.c_str());
  }
  std::printf("\nThe Sc = 4 scalar holds more variance at high k (the\n"
              "viscous-convective range that makes high-Schmidt mixing so\n"
              "expensive to resolve - the motivation for the GPU codes).\n");
  return 0;
}
