// Production-run planner: given a target problem size, reproduces the
// Sec. 3.5 sizing analysis (node counts, pencil counts, message sizes) and
// predicts the time per RK2 step for every MPI configuration, recommending
// the best one - the decision procedure a user of the paper's code would
// follow before burning an INCITE allocation.
//
//   ./summit_planner [--n=18432] [--nodes=0 (auto)]

#include <cstdio>

#include "model/memory.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 18432);
  int nodes = static_cast<int>(cli.get_int("nodes", 0));

  const model::MemoryModel mm;
  const pipeline::DnsStepModel step_model;

  std::printf("=== psdns production planner: %lld^3 on Summit ===\n\n",
              static_cast<long long>(n));

  std::printf("Memory sizing (Sec. 3.5):\n");
  std::printf("  host bytes needed (D=%g vars, single precision): %s\n",
              mm.params().variables_estimate,
              util::format_bytes(4.0 * mm.params().variables_estimate *
                                 static_cast<double>(n) * n * n)
                  .c_str());
  std::printf("  minimum nodes (estimate %.0f, next divisor of N): %d\n",
              mm.min_nodes_estimate(n), mm.min_nodes(n));
  if (nodes == 0) {
    nodes = mm.min_nodes(n);
    // Prefer a 2x shorter time to solution when the machine allows it, as
    // the paper did (1536 -> 3072).
    if (2 * nodes <= 4608 && n % (2 * nodes) == 0) nodes *= 2;
  }
  const int np = mm.pencils_needed(n, nodes);
  std::printf("  chosen nodes: %d (%.0f%% of Summit)\n", nodes,
              100.0 * nodes / 4608.0);
  std::printf("  memory occupancy per node: %.1f GiB of 448 GiB usable\n",
              mm.host_bytes_per_node(n, nodes) / model::kGiB);
  std::printf("  pencils per slab to fit 16 GB GPUs: %d (%s per pencil)\n\n",
              np,
              util::format_bytes(mm.pencil_bytes(n, nodes, np)).c_str());

  std::printf("Predicted performance per RK2 step:\n");
  util::Table t({"Config", "Tasks/node", "P2P msg (3 vars)", "Step time",
                 "Steps/hour"});
  double best = 1e300;
  const char* best_name = "";
  for (int mc = 0; mc < 3; ++mc) {
    pipeline::PipelineConfig cfg;
    cfg.n = n;
    cfg.nodes = nodes;
    cfg.pencils = np;
    cfg.mpi = static_cast<pipeline::MpiConfig>(mc);
    const auto r = step_model.simulate_gpu_step(cfg);
    const auto problem = cfg.problem();
    t.add_row({pipeline::to_string(cfg.mpi),
               std::to_string(cfg.tasks_per_node()),
               util::format_bytes(problem.p2p_bytes(cfg.q())),
               util::format_time(r.seconds),
               util::format_fixed(3600.0 / r.seconds, 0)});
    if (r.seconds < best) {
      best = r.seconds;
      best_name = pipeline::to_string(cfg.mpi);
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  const double cpu = step_model.cpu_step_seconds(n, nodes);
  std::printf("Recommendation: %s\n", best_name);
  std::printf("  vs synchronous CPU code (%s/step): %.1fx speedup\n",
              util::format_time(cpu).c_str(), cpu / best);
  std::printf("  a 10,000-step production segment: %.1f wall-clock hours\n",
              best * 10000.0 / 3600.0);
  if (best > 20.0) {
    std::printf("  WARNING: above the ~20 s/step turnaround goal of "
                "Sec. 3.\n");
  }
  return 0;
}
