# Empty dependencies file for transpose_test.
# This may be replaced when dependencies are built.
