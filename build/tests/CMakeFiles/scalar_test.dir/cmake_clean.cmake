file(REMOVE_RECURSE
  "CMakeFiles/scalar_test.dir/scalar_test.cpp.o"
  "CMakeFiles/scalar_test.dir/scalar_test.cpp.o.d"
  "scalar_test"
  "scalar_test.pdb"
  "scalar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
