# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/fft_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/transpose_test[1]_include.cmake")
include("/root/repo/build/tests/dns_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
