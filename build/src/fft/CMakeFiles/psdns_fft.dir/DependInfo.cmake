
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/bluestein.cpp" "src/fft/CMakeFiles/psdns_fft.dir/bluestein.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/bluestein.cpp.o.d"
  "/root/repo/src/fft/dft.cpp" "src/fft/CMakeFiles/psdns_fft.dir/dft.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/dft.cpp.o.d"
  "/root/repo/src/fft/factor.cpp" "src/fft/CMakeFiles/psdns_fft.dir/factor.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/factor.cpp.o.d"
  "/root/repo/src/fft/fft3d.cpp" "src/fft/CMakeFiles/psdns_fft.dir/fft3d.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/fft3d.cpp.o.d"
  "/root/repo/src/fft/mixed_radix.cpp" "src/fft/CMakeFiles/psdns_fft.dir/mixed_radix.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/mixed_radix.cpp.o.d"
  "/root/repo/src/fft/plan.cpp" "src/fft/CMakeFiles/psdns_fft.dir/plan.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/plan.cpp.o.d"
  "/root/repo/src/fft/real.cpp" "src/fft/CMakeFiles/psdns_fft.dir/real.cpp.o" "gcc" "src/fft/CMakeFiles/psdns_fft.dir/real.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/psdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
