# Empty dependencies file for psdns_fft.
# This may be replaced when dependencies are built.
