file(REMOVE_RECURSE
  "CMakeFiles/psdns_fft.dir/bluestein.cpp.o"
  "CMakeFiles/psdns_fft.dir/bluestein.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/dft.cpp.o"
  "CMakeFiles/psdns_fft.dir/dft.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/factor.cpp.o"
  "CMakeFiles/psdns_fft.dir/factor.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/fft3d.cpp.o"
  "CMakeFiles/psdns_fft.dir/fft3d.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/mixed_radix.cpp.o"
  "CMakeFiles/psdns_fft.dir/mixed_radix.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/plan.cpp.o"
  "CMakeFiles/psdns_fft.dir/plan.cpp.o.d"
  "CMakeFiles/psdns_fft.dir/real.cpp.o"
  "CMakeFiles/psdns_fft.dir/real.cpp.o.d"
  "libpsdns_fft.a"
  "libpsdns_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
