file(REMOVE_RECURSE
  "libpsdns_fft.a"
)
