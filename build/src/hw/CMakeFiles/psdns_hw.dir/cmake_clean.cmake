file(REMOVE_RECURSE
  "CMakeFiles/psdns_hw.dir/summit.cpp.o"
  "CMakeFiles/psdns_hw.dir/summit.cpp.o.d"
  "libpsdns_hw.a"
  "libpsdns_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
