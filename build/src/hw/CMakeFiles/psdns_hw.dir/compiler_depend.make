# Empty compiler generated dependencies file for psdns_hw.
# This may be replaced when dependencies are built.
