file(REMOVE_RECURSE
  "libpsdns_hw.a"
)
