file(REMOVE_RECURSE
  "CMakeFiles/psdns_dns.dir/pencil_solver.cpp.o"
  "CMakeFiles/psdns_dns.dir/pencil_solver.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/regrid.cpp.o"
  "CMakeFiles/psdns_dns.dir/regrid.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/solver.cpp.o"
  "CMakeFiles/psdns_dns.dir/solver.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/spectral_ops.cpp.o"
  "CMakeFiles/psdns_dns.dir/spectral_ops.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/statistics.cpp.o"
  "CMakeFiles/psdns_dns.dir/statistics.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/two_point.cpp.o"
  "CMakeFiles/psdns_dns.dir/two_point.cpp.o.d"
  "CMakeFiles/psdns_dns.dir/vorticity.cpp.o"
  "CMakeFiles/psdns_dns.dir/vorticity.cpp.o.d"
  "libpsdns_dns.a"
  "libpsdns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
