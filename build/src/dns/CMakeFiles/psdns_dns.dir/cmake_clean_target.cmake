file(REMOVE_RECURSE
  "libpsdns_dns.a"
)
