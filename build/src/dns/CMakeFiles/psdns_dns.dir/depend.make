# Empty dependencies file for psdns_dns.
# This may be replaced when dependencies are built.
