file(REMOVE_RECURSE
  "CMakeFiles/psdns_gpu.dir/cost_model.cpp.o"
  "CMakeFiles/psdns_gpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/psdns_gpu.dir/virtual_gpu.cpp.o"
  "CMakeFiles/psdns_gpu.dir/virtual_gpu.cpp.o.d"
  "libpsdns_gpu.a"
  "libpsdns_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
