# Empty compiler generated dependencies file for psdns_gpu.
# This may be replaced when dependencies are built.
