file(REMOVE_RECURSE
  "libpsdns_gpu.a"
)
