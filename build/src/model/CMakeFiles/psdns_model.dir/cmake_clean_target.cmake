file(REMOVE_RECURSE
  "libpsdns_model.a"
)
