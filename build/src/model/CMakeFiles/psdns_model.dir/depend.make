# Empty dependencies file for psdns_model.
# This may be replaced when dependencies are built.
