file(REMOVE_RECURSE
  "CMakeFiles/psdns_model.dir/memory.cpp.o"
  "CMakeFiles/psdns_model.dir/memory.cpp.o.d"
  "CMakeFiles/psdns_model.dir/scaling.cpp.o"
  "CMakeFiles/psdns_model.dir/scaling.cpp.o.d"
  "libpsdns_model.a"
  "libpsdns_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
