# Empty compiler generated dependencies file for psdns_transpose.
# This may be replaced when dependencies are built.
