file(REMOVE_RECURSE
  "CMakeFiles/psdns_transpose.dir/dist_fft.cpp.o"
  "CMakeFiles/psdns_transpose.dir/dist_fft.cpp.o.d"
  "CMakeFiles/psdns_transpose.dir/pencil.cpp.o"
  "CMakeFiles/psdns_transpose.dir/pencil.cpp.o.d"
  "CMakeFiles/psdns_transpose.dir/slab.cpp.o"
  "CMakeFiles/psdns_transpose.dir/slab.cpp.o.d"
  "libpsdns_transpose.a"
  "libpsdns_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
