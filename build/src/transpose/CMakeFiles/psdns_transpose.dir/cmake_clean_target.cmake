file(REMOVE_RECURSE
  "libpsdns_transpose.a"
)
