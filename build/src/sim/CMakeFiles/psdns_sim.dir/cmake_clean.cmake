file(REMOVE_RECURSE
  "CMakeFiles/psdns_sim.dir/dag.cpp.o"
  "CMakeFiles/psdns_sim.dir/dag.cpp.o.d"
  "CMakeFiles/psdns_sim.dir/engine.cpp.o"
  "CMakeFiles/psdns_sim.dir/engine.cpp.o.d"
  "CMakeFiles/psdns_sim.dir/flow_network.cpp.o"
  "CMakeFiles/psdns_sim.dir/flow_network.cpp.o.d"
  "CMakeFiles/psdns_sim.dir/trace.cpp.o"
  "CMakeFiles/psdns_sim.dir/trace.cpp.o.d"
  "libpsdns_sim.a"
  "libpsdns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
