file(REMOVE_RECURSE
  "libpsdns_sim.a"
)
