# Empty compiler generated dependencies file for psdns_sim.
# This may be replaced when dependencies are built.
