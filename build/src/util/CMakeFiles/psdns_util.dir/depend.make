# Empty dependencies file for psdns_util.
# This may be replaced when dependencies are built.
