file(REMOVE_RECURSE
  "libpsdns_util.a"
)
