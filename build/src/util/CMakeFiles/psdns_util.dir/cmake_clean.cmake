file(REMOVE_RECURSE
  "CMakeFiles/psdns_util.dir/cli.cpp.o"
  "CMakeFiles/psdns_util.dir/cli.cpp.o.d"
  "CMakeFiles/psdns_util.dir/config.cpp.o"
  "CMakeFiles/psdns_util.dir/config.cpp.o.d"
  "CMakeFiles/psdns_util.dir/format.cpp.o"
  "CMakeFiles/psdns_util.dir/format.cpp.o.d"
  "CMakeFiles/psdns_util.dir/rng.cpp.o"
  "CMakeFiles/psdns_util.dir/rng.cpp.o.d"
  "CMakeFiles/psdns_util.dir/table.cpp.o"
  "CMakeFiles/psdns_util.dir/table.cpp.o.d"
  "libpsdns_util.a"
  "libpsdns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
