# Empty compiler generated dependencies file for psdns_comm.
# This may be replaced when dependencies are built.
