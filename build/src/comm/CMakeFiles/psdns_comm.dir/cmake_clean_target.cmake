file(REMOVE_RECURSE
  "libpsdns_comm.a"
)
