file(REMOVE_RECURSE
  "CMakeFiles/psdns_comm.dir/communicator.cpp.o"
  "CMakeFiles/psdns_comm.dir/communicator.cpp.o.d"
  "libpsdns_comm.a"
  "libpsdns_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
