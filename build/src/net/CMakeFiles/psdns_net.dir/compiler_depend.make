# Empty compiler generated dependencies file for psdns_net.
# This may be replaced when dependencies are built.
