file(REMOVE_RECURSE
  "libpsdns_net.a"
)
