file(REMOVE_RECURSE
  "CMakeFiles/psdns_net.dir/alltoall_model.cpp.o"
  "CMakeFiles/psdns_net.dir/alltoall_model.cpp.o.d"
  "libpsdns_net.a"
  "libpsdns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
