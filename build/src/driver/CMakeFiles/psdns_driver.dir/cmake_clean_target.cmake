file(REMOVE_RECURSE
  "libpsdns_driver.a"
)
