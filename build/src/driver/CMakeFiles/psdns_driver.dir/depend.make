# Empty dependencies file for psdns_driver.
# This may be replaced when dependencies are built.
