# Empty compiler generated dependencies file for psdns_driver.
# This may be replaced when dependencies are built.
