file(REMOVE_RECURSE
  "CMakeFiles/psdns_driver.dir/campaign.cpp.o"
  "CMakeFiles/psdns_driver.dir/campaign.cpp.o.d"
  "libpsdns_driver.a"
  "libpsdns_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
