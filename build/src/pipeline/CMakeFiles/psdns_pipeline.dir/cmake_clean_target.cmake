file(REMOVE_RECURSE
  "libpsdns_pipeline.a"
)
