# Empty compiler generated dependencies file for psdns_pipeline.
# This may be replaced when dependencies are built.
