file(REMOVE_RECURSE
  "CMakeFiles/psdns_pipeline.dir/async_fft.cpp.o"
  "CMakeFiles/psdns_pipeline.dir/async_fft.cpp.o.d"
  "CMakeFiles/psdns_pipeline.dir/dns_step_model.cpp.o"
  "CMakeFiles/psdns_pipeline.dir/dns_step_model.cpp.o.d"
  "CMakeFiles/psdns_pipeline.dir/timeline.cpp.o"
  "CMakeFiles/psdns_pipeline.dir/timeline.cpp.o.d"
  "libpsdns_pipeline.a"
  "libpsdns_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
