# Empty compiler generated dependencies file for psdns_io.
# This may be replaced when dependencies are built.
