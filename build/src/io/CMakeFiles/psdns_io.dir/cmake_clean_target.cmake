file(REMOVE_RECURSE
  "libpsdns_io.a"
)
