file(REMOVE_RECURSE
  "CMakeFiles/psdns_io.dir/checkpoint.cpp.o"
  "CMakeFiles/psdns_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/psdns_io.dir/series.cpp.o"
  "CMakeFiles/psdns_io.dir/series.cpp.o.d"
  "libpsdns_io.a"
  "libpsdns_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdns_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
