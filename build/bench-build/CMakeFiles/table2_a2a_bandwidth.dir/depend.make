# Empty dependencies file for table2_a2a_bandwidth.
# This may be replaced when dependencies are built.
