file(REMOVE_RECURSE
  "../bench/table2_a2a_bandwidth"
  "../bench/table2_a2a_bandwidth.pdb"
  "CMakeFiles/table2_a2a_bandwidth.dir/table2_a2a_bandwidth.cpp.o"
  "CMakeFiles/table2_a2a_bandwidth.dir/table2_a2a_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_a2a_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
