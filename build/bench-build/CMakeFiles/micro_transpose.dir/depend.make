# Empty dependencies file for micro_transpose.
# This may be replaced when dependencies are built.
