file(REMOVE_RECURSE
  "../bench/micro_transpose"
  "../bench/micro_transpose.pdb"
  "CMakeFiles/micro_transpose.dir/micro_transpose.cpp.o"
  "CMakeFiles/micro_transpose.dir/micro_transpose.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
