# Empty dependencies file for table4_weak_scaling.
# This may be replaced when dependencies are built.
