
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_weak_scaling.cpp" "bench-build/CMakeFiles/table4_weak_scaling.dir/table4_weak_scaling.cpp.o" "gcc" "bench-build/CMakeFiles/table4_weak_scaling.dir/table4_weak_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/psdns_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/psdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/psdns_model.dir/DependInfo.cmake"
  "/root/repo/build/src/transpose/CMakeFiles/psdns_transpose.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/psdns_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psdns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/psdns_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/psdns_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
