file(REMOVE_RECURSE
  "../bench/table4_weak_scaling"
  "../bench/table4_weak_scaling.pdb"
  "CMakeFiles/table4_weak_scaling.dir/table4_weak_scaling.cpp.o"
  "CMakeFiles/table4_weak_scaling.dir/table4_weak_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
