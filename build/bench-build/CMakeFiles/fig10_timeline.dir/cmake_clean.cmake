file(REMOVE_RECURSE
  "../bench/fig10_timeline"
  "../bench/fig10_timeline.pdb"
  "CMakeFiles/fig10_timeline.dir/fig10_timeline.cpp.o"
  "CMakeFiles/fig10_timeline.dir/fig10_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
