# Empty compiler generated dependencies file for strong_scaling_18432.
# This may be replaced when dependencies are built.
