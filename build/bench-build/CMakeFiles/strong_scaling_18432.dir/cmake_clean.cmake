file(REMOVE_RECURSE
  "../bench/strong_scaling_18432"
  "../bench/strong_scaling_18432.pdb"
  "CMakeFiles/strong_scaling_18432.dir/strong_scaling_18432.cpp.o"
  "CMakeFiles/strong_scaling_18432.dir/strong_scaling_18432.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strong_scaling_18432.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
