# Empty dependencies file for fig7_strided_copy.
# This may be replaced when dependencies are built.
