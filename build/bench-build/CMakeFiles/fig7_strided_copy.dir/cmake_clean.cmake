file(REMOVE_RECURSE
  "../bench/fig7_strided_copy"
  "../bench/fig7_strided_copy.pdb"
  "CMakeFiles/fig7_strided_copy.dir/fig7_strided_copy.cpp.o"
  "CMakeFiles/fig7_strided_copy.dir/fig7_strided_copy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_strided_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
