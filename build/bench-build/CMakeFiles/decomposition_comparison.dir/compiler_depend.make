# Empty compiler generated dependencies file for decomposition_comparison.
# This may be replaced when dependencies are built.
