file(REMOVE_RECURSE
  "../bench/decomposition_comparison"
  "../bench/decomposition_comparison.pdb"
  "CMakeFiles/decomposition_comparison.dir/decomposition_comparison.cpp.o"
  "CMakeFiles/decomposition_comparison.dir/decomposition_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
