file(REMOVE_RECURSE
  "../bench/micro_fft"
  "../bench/micro_fft.pdb"
  "CMakeFiles/micro_fft.dir/micro_fft.cpp.o"
  "CMakeFiles/micro_fft.dir/micro_fft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
