file(REMOVE_RECURSE
  "../bench/fig9_time_per_step"
  "../bench/fig9_time_per_step.pdb"
  "CMakeFiles/fig9_time_per_step.dir/fig9_time_per_step.cpp.o"
  "CMakeFiles/fig9_time_per_step.dir/fig9_time_per_step.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_time_per_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
