# Empty compiler generated dependencies file for fig9_time_per_step.
# This may be replaced when dependencies are built.
