file(REMOVE_RECURSE
  "../bench/table3_dns_timings"
  "../bench/table3_dns_timings.pdb"
  "CMakeFiles/table3_dns_timings.dir/table3_dns_timings.cpp.o"
  "CMakeFiles/table3_dns_timings.dir/table3_dns_timings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dns_timings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
