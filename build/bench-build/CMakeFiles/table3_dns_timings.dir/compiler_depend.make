# Empty compiler generated dependencies file for table3_dns_timings.
# This may be replaced when dependencies are built.
