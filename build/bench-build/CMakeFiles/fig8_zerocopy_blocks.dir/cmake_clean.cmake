file(REMOVE_RECURSE
  "../bench/fig8_zerocopy_blocks"
  "../bench/fig8_zerocopy_blocks.pdb"
  "CMakeFiles/fig8_zerocopy_blocks.dir/fig8_zerocopy_blocks.cpp.o"
  "CMakeFiles/fig8_zerocopy_blocks.dir/fig8_zerocopy_blocks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_zerocopy_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
