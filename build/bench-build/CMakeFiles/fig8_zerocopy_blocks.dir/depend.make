# Empty dependencies file for fig8_zerocopy_blocks.
# This may be replaced when dependencies are built.
