file(REMOVE_RECURSE
  "../examples/resolution_continuation"
  "../examples/resolution_continuation.pdb"
  "CMakeFiles/resolution_continuation.dir/resolution_continuation.cpp.o"
  "CMakeFiles/resolution_continuation.dir/resolution_continuation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolution_continuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
