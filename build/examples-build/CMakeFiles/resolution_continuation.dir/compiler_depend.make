# Empty compiler generated dependencies file for resolution_continuation.
# This may be replaced when dependencies are built.
