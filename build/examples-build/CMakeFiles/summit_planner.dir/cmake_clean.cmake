file(REMOVE_RECURSE
  "../examples/summit_planner"
  "../examples/summit_planner.pdb"
  "CMakeFiles/summit_planner.dir/summit_planner.cpp.o"
  "CMakeFiles/summit_planner.dir/summit_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summit_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
