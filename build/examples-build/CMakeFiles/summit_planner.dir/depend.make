# Empty dependencies file for summit_planner.
# This may be replaced when dependencies are built.
