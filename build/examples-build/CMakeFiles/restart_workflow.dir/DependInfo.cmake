
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/restart_workflow.cpp" "examples-build/CMakeFiles/restart_workflow.dir/restart_workflow.cpp.o" "gcc" "examples-build/CMakeFiles/restart_workflow.dir/restart_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/psdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/psdns_io.dir/DependInfo.cmake"
  "/root/repo/build/src/transpose/CMakeFiles/psdns_transpose.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/psdns_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/psdns_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/psdns_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psdns_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/psdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
