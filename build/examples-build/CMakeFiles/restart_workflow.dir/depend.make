# Empty dependencies file for restart_workflow.
# This may be replaced when dependencies are built.
