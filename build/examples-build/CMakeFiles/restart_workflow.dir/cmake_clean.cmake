file(REMOVE_RECURSE
  "../examples/restart_workflow"
  "../examples/restart_workflow.pdb"
  "CMakeFiles/restart_workflow.dir/restart_workflow.cpp.o"
  "CMakeFiles/restart_workflow.dir/restart_workflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
