file(REMOVE_RECURSE
  "../examples/async_pipeline_demo"
  "../examples/async_pipeline_demo.pdb"
  "CMakeFiles/async_pipeline_demo.dir/async_pipeline_demo.cpp.o"
  "CMakeFiles/async_pipeline_demo.dir/async_pipeline_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
