# Empty dependencies file for async_pipeline_demo.
# This may be replaced when dependencies are built.
