file(REMOVE_RECURSE
  "../examples/forced_turbulence"
  "../examples/forced_turbulence.pdb"
  "CMakeFiles/forced_turbulence.dir/forced_turbulence.cpp.o"
  "CMakeFiles/forced_turbulence.dir/forced_turbulence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forced_turbulence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
