# Empty dependencies file for forced_turbulence.
# This may be replaced when dependencies are built.
