# Empty compiler generated dependencies file for production_main.
# This may be replaced when dependencies are built.
