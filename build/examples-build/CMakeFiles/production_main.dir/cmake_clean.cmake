file(REMOVE_RECURSE
  "../examples/production_main"
  "../examples/production_main.pdb"
  "CMakeFiles/production_main.dir/production_main.cpp.o"
  "CMakeFiles/production_main.dir/production_main.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
