file(REMOVE_RECURSE
  "../examples/scalar_mixing"
  "../examples/scalar_mixing.pdb"
  "CMakeFiles/scalar_mixing.dir/scalar_mixing.cpp.o"
  "CMakeFiles/scalar_mixing.dir/scalar_mixing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
