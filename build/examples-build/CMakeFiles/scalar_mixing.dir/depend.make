# Empty dependencies file for scalar_mixing.
# This may be replaced when dependencies are built.
